package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/flexray"
	"repro/internal/sched"
	"repro/internal/synth"
)

// The ablations quantify the design choices the paper motivates
// qualitatively: unique criticality-ordered FrameIDs (Section 6.1),
// the per-frame versus per-node latest-transmission rule (Section 3 /
// DESIGN.md §3), and the exact versus greedy "filled bus cycles"
// computation of the analysis (Section 5.1 / ref [14]).

// AblationRow compares one design choice on one system.
type AblationRow struct {
	Name     string
	Seed     int64
	Baseline float64 // cost with the paper's choice
	Variant  float64 // cost with the alternative
	// BaselineSched/VariantSched report feasibility under each
	// choice (what the FrameID guideline actually optimises).
	BaselineSched bool
	VariantSched  bool
	// BaselineTime/VariantTime are wall-clock times where the choice
	// affects effort (fill solver ablation).
	BaselineTime time.Duration
	VariantTime  time.Duration
}

// AblationFrameIDs compares the criticality-driven FrameID assignment
// (smaller CPm first, Fig. 5 line 1) against the pessimal reversed
// order on BBC-configured systems. The paper's guideline should never
// lose.
func AblationFrameIDs(seeds []int64, nodes int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, seed := range seeds {
		p := synth.DefaultParams(nodes, seed)
		p.DeadlineFactor = 2.0
		sys, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.DYNGridCap = 16
		base, err := core.BBC(sys, opts)
		if err != nil {
			return nil, err
		}
		// Reverse the FrameID order on the same bus geometry.
		cfg := base.Config.Clone()
		maxFid := cfg.MaxFrameID()
		for m, f := range cfg.FrameID {
			cfg.FrameID[m] = maxFid - f + 1
		}
		_, res, err := sched.Build(sys, cfg, opts.Sched)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "frameid-criticality", Seed: seed,
			Baseline: base.Cost, Variant: res.Cost,
			BaselineSched: base.Schedulable, VariantSched: res.Schedulable,
		})
	}
	return rows, nil
}

// AblationLatestTx compares the per-frame admission rule (the paper's
// Fig. 4 semantics) against the specification's per-node pLatestTx on
// identical configurations. Per-node is strictly more conservative: a
// node's largest frame throttles its small ones, so response times —
// and the cost — can only grow.
func AblationLatestTx(seeds []int64, nodes int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, seed := range seeds {
		p := synth.DefaultParams(nodes, seed)
		p.DeadlineFactor = 2.0
		sys, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.DYNGridCap = 16
		base, err := core.BBC(sys, opts)
		if err != nil {
			return nil, err
		}
		cfg := base.Config.Clone()
		cfg.Policy = flexray.LatestTxPerNode
		_, res, err := sched.Build(sys, cfg, opts.Sched)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "latest-tx-policy", Seed: seed,
			Baseline: base.Cost, Variant: res.Cost,
			BaselineSched: base.Schedulable, VariantSched: res.Schedulable,
		})
	}
	return rows, nil
}

// AblationFillSolver compares the polynomial greedy "filled cycles"
// computation against the exact branch-and-bound on identical
// configurations: the exact solver can only report equal or larger
// worst cases (it maximises the filling), at higher analysis cost.
func AblationFillSolver(seeds []int64, nodes int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, seed := range seeds {
		p := synth.DefaultParams(nodes, seed)
		p.DeadlineFactor = 2.0
		sys, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.DYNGridCap = 16
		base, err := core.BBC(sys, opts)
		if err != nil {
			return nil, err
		}

		run := func(exact bool) (float64, time.Duration, error) {
			o := sched.DefaultOptions()
			o.Analysis.ExactFill = exact
			start := time.Now()
			_, res, err := sched.Build(sys, base.Config, o)
			if err != nil {
				return 0, 0, err
			}
			return res.Cost, time.Since(start), nil
		}
		gc, gt, err := run(false)
		if err != nil {
			return nil, err
		}
		ec, et, err := run(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "fill-solver", Seed: seed,
			Baseline: gc, Variant: ec,
			BaselineTime: gt, VariantTime: et,
		})
	}
	return rows, nil
}

// Ablations bundles all three studies for the bench tool.
func Ablations(seeds []int64, nodes int) ([]AblationRow, error) {
	var all []AblationRow
	for _, f := range []func([]int64, int) ([]AblationRow, error){
		AblationFrameIDs, AblationLatestTx, AblationFillSolver,
	} {
		rows, err := f(seeds, nodes)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}

// AblationReport renders rows as a printable table.
func AblationReport(rows []AblationRow) string {
	out := fmt.Sprintf("%-22s %-6s %-14s %-14s %-12s %-12s\n",
		"ablation", "seed", "paper choice", "alternative", "t(paper)", "t(alt)")
	for _, r := range rows {
		ts, tv := "-", "-"
		if r.BaselineTime > 0 {
			ts = r.BaselineTime.Round(time.Microsecond).String()
			tv = r.VariantTime.Round(time.Microsecond).String()
		}
		out += fmt.Sprintf("%-22s %-6d %-14.1f %-14.1f %-12s %-12s\n",
			r.Name, r.Seed, r.Baseline, r.Variant, ts, tv)
	}
	return out
}
