package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/cruise"
)

// CruiseRow is the outcome of one optimiser on the cruise-controller
// case study.
type CruiseRow struct {
	Algorithm   string
	Schedulable bool
	Cost        float64
	Elapsed     time.Duration
	Evaluations int
}

// Cruise regenerates the in-text case study of Section 7: BBC
// configures the cruise controller quickly but unschedulably; OBC-CF
// and OBC-EE both find schedulable configurations, OBC-CF with a
// fraction of OBC-EE's effort and a cost within ~1% of it.
func Cruise(opts core.Options) ([]CruiseRow, error) {
	sys, err := cruise.System()
	if err != nil {
		return nil, err
	}
	var rows []CruiseRow
	run := func(name string, f func() (*core.Result, error)) error {
		res, err := f()
		if err != nil {
			return err
		}
		rows = append(rows, CruiseRow{
			Algorithm:   name,
			Schedulable: res.Schedulable,
			Cost:        res.Cost,
			Elapsed:     res.Elapsed,
			Evaluations: res.Evaluations,
		})
		return nil
	}
	if err := run("BBC", func() (*core.Result, error) { return core.BBC(sys, opts) }); err != nil {
		return nil, err
	}
	if err := run("OBC-CF", func() (*core.Result, error) { return core.OBCCF(sys, opts) }); err != nil {
		return nil, err
	}
	if err := run("OBC-EE", func() (*core.Result, error) { return core.OBCEE(sys, opts) }); err != nil {
		return nil, err
	}
	return rows, nil
}
