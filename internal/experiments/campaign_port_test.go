package experiments

import (
	"reflect"
	"testing"
)

// TestFig7WorkerInvariance: the Fig. 7 sweep is identical no matter how
// many engine workers evaluate it.
func TestFig7WorkerInvariance(t *testing.T) {
	p := DefaultFig7Params()
	p.Points = 5
	p.Workers = 1
	one, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	four, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, four) {
		t.Errorf("fig7 differs across worker counts:\n%+v\nvs\n%+v", one, four)
	}
}

// TestFig9WorkerInvariance: the Fig. 9 population sweep aggregates to
// identical cells (costs, deviations, schedulability, evaluation
// counts) at one worker and at four — only wall-clock may differ.
func TestFig9WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep in -short mode")
	}
	p := QuickFig9Params()
	p.AppsPerSet = 2
	p.NodeCounts = []int{2}
	run := func(workers int) []Fig9Cell {
		p.Workers = workers
		res, err := Fig9(p)
		if err != nil {
			t.Fatal(err)
		}
		cells := make([]Fig9Cell, len(res.Cells))
		for i, c := range res.Cells {
			c.TotalTime = 0
			cells[i] = c
		}
		return cells
	}
	one := run(1)
	four := run(4)
	if !reflect.DeepEqual(one, four) {
		t.Errorf("fig9 differs across worker counts:\n%+v\nvs\n%+v", one, four)
	}
}
