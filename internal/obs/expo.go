package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each
// preceded by its # HELP and # TYPE lines, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the OpenMetrics 1.0 flavour of the same
// body: counter family names lose their `_total` suffix in the HELP
// and TYPE lines (the samples keep it, as the format requires),
// histogram bucket samples carry their latest exemplar as
// `# {trace_id="..."} value ts`, and the body ends with `# EOF`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, om bool) error {
	// Snapshot families AND their series maps under the read lock:
	// lookup inserts series under the write lock at request time (e.g.
	// the first 404 on a route), so iterating f.series unlocked would
	// race a concurrent scrape. Rendering happens outside the lock; the
	// series pointers themselves are immutable once published and their
	// values are atomics.
	type famSnap struct {
		fam    *family
		series []*series
	}
	r.mu.RLock()
	fams := make([]famSnap, 0, len(r.fams))
	for _, f := range r.fams {
		out := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
		fams = append(fams, famSnap{fam: f, series: out})
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].fam.name < fams[j].fam.name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeHeader(bw, f.fam, om)
		for _, s := range f.series {
			if s.hist != nil {
				writeHistogram(bw, f.fam.name, s, om)
				continue
			}
			writeName(bw, f.fam.name, s.labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.value()))
			bw.WriteByte('\n')
		}
	}
	if om {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, f *family, om bool) {
	// OpenMetrics reserves the _total suffix for counter samples: the
	// family itself is announced without it.
	name := f.name
	if om && f.typ == typeCounter {
		name = strings.TrimSuffix(name, "_total")
	}
	w.WriteString("# HELP ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(name)
	w.WriteByte(' ')
	w.WriteString(f.typ)
	w.WriteByte('\n')
}

// writeName writes `name{k="v",...}` with an optional extra label
// (used for the histogram le bound) appended after the fixed labels.
func writeName(w *bufio.Writer, name string, labels []string, extraKey, extraVal string) {
	w.WriteString(name)
	if len(labels) == 0 && extraKey == "" {
		return
	}
	w.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(labels[i])
		w.WriteString(`="`)
		w.WriteString(escapeLabel(labels[i+1]))
		w.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraKey)
		w.WriteString(`="`)
		w.WriteString(extraVal)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

func writeHistogram(w *bufio.Writer, name string, s *series, om bool) {
	cum, count, sum := s.hist.snapshot()
	for i, bound := range s.hist.bounds {
		writeName(w, name+"_bucket", s.labels, "le", formatFloat(bound))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum[i], 10))
		if om {
			writeExemplar(w, s.hist.exemplars[i].Load())
		}
		w.WriteByte('\n')
	}
	writeName(w, name+"_bucket", s.labels, "le", "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum[len(cum)-1], 10))
	if om {
		writeExemplar(w, s.hist.exemplars[len(cum)-1].Load())
	}
	w.WriteByte('\n')
	writeName(w, name+"_sum", s.labels, "", "")
	w.WriteByte(' ')
	w.WriteString(formatFloat(sum))
	w.WriteByte('\n')
	writeName(w, name+"_count", s.labels, "", "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(count, 10))
	w.WriteByte('\n')
}

// writeExemplar appends an OpenMetrics exemplar to a bucket sample:
// ` # {trace_id="..."} value timestamp`.
func writeExemplar(w *bufio.Writer, ex *Exemplar) {
	if ex == nil {
		return
	}
	w.WriteString(` # {trace_id="`)
	w.WriteString(escapeLabel(ex.TraceID))
	w.WriteString(`"} `)
	w.WriteString(formatFloat(ex.Value))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64))
}

// formatFloat renders a sample value; Prometheus spells infinities
// +Inf/-Inf and accepts Go's shortest-round-trip 'g' form otherwise.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes help text: backslash and newline only (quotes are
// legal in help).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ServeHTTP makes a Registry mountable as the /metrics endpoint. A
// scrape accepting application/openmetrics-text gets the OpenMetrics
// rendering (with histogram exemplars); everything else gets the
// classic text format, which cannot carry exemplars.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	h := w.Header()
	om := strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text")
	if om {
		h.Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		h.Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	h.Set("Cache-Control", "no-store")
	// Errors past this point are client disconnects; the scrape body
	// cannot be repaired once streaming has started.
	_ = r.writeExposition(w, om)
}

// memStatsWindow bounds how often a scrape may trigger a (briefly
// stop-the-world) runtime.ReadMemStats: one read serves all memory
// metrics of a scrape, and rescrapes within the window reuse it.
const memStatsWindow = 100 * time.Millisecond

// RegisterGoRuntime registers the Go runtime family — goroutine count,
// heap usage, cumulative allocation and GC cycle/pause totals — on r.
// Values are gathered lazily at scrape time.
func RegisterGoRuntime(r *Registry) {
	var (
		mu   sync.Mutex
		ms   runtime.MemStats
		last time.Time
	)
	mem := func(read func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if now := time.Now(); now.Sub(last) > memStatsWindow {
				runtime.ReadMemStats(&ms)
				last = now
			}
			return read(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.GaugeFunc("go_sys_bytes", "Bytes of memory obtained from the OS.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.Sys) }))
	r.CounterFunc("go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }))
	r.CounterFunc("go_gc_cycles_total", "Number of completed GC cycles.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
}
