package obs

import (
	"encoding/hex"
	"errors"
	"strings"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/)
// traceparent handling: version "00" headers are parsed strictly;
// headers with a higher version are accepted when their first four
// fields are well-formed (forward compatibility, as the spec
// requires). All hex is lowercase on the wire.

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "traceparent"

var (
	errTraceparentFields  = errors.New("obs: traceparent: want version-traceid-spanid-flags")
	errTraceparentVersion = errors.New("obs: traceparent: malformed version")
	errTraceparentTrace   = errors.New("obs: traceparent: malformed trace-id")
	errTraceparentSpan    = errors.New("obs: traceparent: malformed parent-id")
	errTraceparentFlags   = errors.New("obs: traceparent: malformed trace-flags")
)

// FormatTraceparent renders sc as a version-00 traceparent value.
// An invalid context renders as "" (nothing to propagate).
func FormatTraceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(sc.TraceID.String())
	b.WriteByte('-')
	b.WriteString(sc.SpanID.String())
	if sc.Sampled {
		b.WriteString("-01")
	} else {
		b.WriteString("-00")
	}
	return b.String()
}

// Traceparent returns the traceparent value for the span carried by
// s (the inject helper used when handing work across a process
// boundary); "" when s is nil.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.sc)
}

// isLowerHex reports whether s is entirely lowercase hex digits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseTraceparent extracts a SpanContext from a traceparent header
// value. The zero SpanContext plus an error is returned for
// malformed input (callers then start a fresh trace).
func ParseTraceparent(v string) (SpanContext, error) {
	v = strings.TrimSpace(v)
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return SpanContext{}, errTraceparentFields
	}
	ver := parts[0]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return SpanContext{}, errTraceparentVersion
	}
	if ver == "00" && len(parts) != 4 {
		// Version 00 defines exactly four fields; trailing data is
		// only legal for future versions.
		return SpanContext{}, errTraceparentFields
	}
	var sc SpanContext
	if len(parts[1]) != 32 || !isLowerHex(parts[1]) {
		return SpanContext{}, errTraceparentTrace
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, errTraceparentTrace
	}
	if sc.TraceID.IsZero() {
		return SpanContext{}, errTraceparentTrace
	}
	if len(parts[2]) != 16 || !isLowerHex(parts[2]) {
		return SpanContext{}, errTraceparentSpan
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, errTraceparentSpan
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, errTraceparentSpan
	}
	flags := parts[3]
	if len(flags) != 2 || !isLowerHex(flags) {
		return SpanContext{}, errTraceparentFlags
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(flags)); err != nil {
		return SpanContext{}, errTraceparentFlags
	}
	sc.Sampled = fb[0]&0x01 != 0
	return sc, nil
}

// ParseTraceID decodes a 32-digit hex trace ID (as found in log
// lines, exemplars and API paths).
func ParseTraceID(v string) (TraceID, error) {
	var id TraceID
	if len(v) != 32 || !isLowerHex(v) {
		return TraceID{}, errTraceparentTrace
	}
	if _, err := hex.Decode(id[:], []byte(v)); err != nil {
		return TraceID{}, errTraceparentTrace
	}
	if id.IsZero() {
		return TraceID{}, errTraceparentTrace
	}
	return id, nil
}
