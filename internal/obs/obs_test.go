package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "h").Add(-1)
}

func TestLabelledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("req_total", "h", "code", "200")
	b := r.Counter("req_total", "h", "code", "500")
	if a == b {
		t.Fatal("distinct label sets shared an instrument")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Fatalf("labelled counters = %v/%v, want 2/1", a.Value(), b.Value())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad-name", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// le=0.1 holds 0.05 and the boundary value 0.1; cumulative counts
	// must be monotone and end at the total.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, cum[i], w)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-102.65) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", sum)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.GaugeFunc("fn_gauge", "h", func() float64 { v++; return v })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_gauge 42") {
		t.Fatalf("callback gauge not rendered:\n%s", sb.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate callback registration did not panic")
		}
	}()
	r.GaugeFunc("fn_gauge", "h", func() float64 { return 0 })
}

func TestCallbackSeriesAsInstrumentPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("cb_gauge", "h", func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("re-obtaining a callback series as a typed instrument did not panic")
		}
	}()
	// Without the guard this would return a series whose gauge is nil,
	// deferring the failure to a confusing Set() far from this site.
	r.Gauge("cb_gauge", "h")
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "h")
	r.Gauge("a_gauge", "h")
	r.Histogram("c_seconds", "h", DefBuckets)
	got := r.Names()
	want := []string{"a_gauge", "b_total", "c_seconds"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from many goroutines while a scraper renders continuously; run under
// -race this is the data-race proof, and the final counts prove no
// increment was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "h")
	g := r.Gauge("hammer_gauge", "h")
	h := r.Histogram("hammer_seconds", "h", DefBuckets)

	const workers, perWorker = 8, 5000
	var scraper, hammer sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		hammer.Add(1)
		go func(seed int) {
			defer hammer.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(seed*i%7) * 0.01)
				// Lazy lookup from the hot path must also be safe.
				r.Counter("hammer_total", "h").Add(0)
				// First-seen label values insert new series under the
				// write lock mid-scrape (the middleware does this on a
				// route's first 404); the scraper must never iterate a
				// family map concurrently with such an insert.
				r.Counter("hammer_codes_total", "h", "code", strconv.Itoa(seed*perWorker+i)).Inc()
			}
		}(w + 1)
	}
	hammer.Wait()
	close(stop)
	scraper.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Fatalf("counter lost increments: %v, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge lost increments: %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost observations: %d, want %d", got, total)
	}
}

// TestInstrumentAllocs pins the hot-path instrument operations at zero
// heap allocations — the contract that lets the eval and store paths
// carry metrics without moving the perfreg allocation gates.
func TestInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_seconds", "h", DefBuckets)
	if n := testing.AllocsPerRun(100, func() { c.Inc(); g.Set(1); h.Observe(0.01) }); n != 0 {
		t.Fatalf("instrument ops allocate %v per run, want 0", n)
	}
}
