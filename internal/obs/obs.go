// Package obs is the observability layer of the repository: a
// dependency-free metrics registry (atomic counters, gauges,
// fixed-bucket histograms, labelled families and scrape-time callback
// metrics) with Prometheus text-format exposition, plus the bounded
// optimiser trace capture behind flexray-serve's /v1/jobs/{id}/trace.
//
// The instruments are deliberately minimal: lock-free atomic updates
// on the hot paths (a counter increment is one atomic add, a histogram
// observation one binary search plus three atomics), registration is
// idempotent (asking for an existing (name, labels) series returns the
// same instrument), and the whole package depends only on the standard
// library, so every internal package may import it without dragging in
// an exporter ecosystem.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric families are typed; the type names match the Prometheus
// exposition TYPE keywords.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// addFloat atomically adds v to the float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value. The zero value is not
// usable on its own: obtain counters from a Registry.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { addFloat(&c.bits, 1) }

// Add adds v; negative increments are a programming error and panic.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decremented")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative values subtract).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, in the
// Prometheus le (less-or-equal) convention. Observations are lock-free.
type Histogram struct {
	// bounds are the inclusive upper bounds, sorted ascending; the
	// implicit +Inf bucket is counts[len(bounds)].
	bounds []float64
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
	// exemplars[i] is the most recent exemplar landing in bucket i
	// (same indexing as counts); only the OpenMetrics rendering
	// exposes them.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram observation to the trace it belongs
// to, so a latency bucket in a scrape points at a concrete trace.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is exactly the le bucket the value falls into.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// keeps it as the bucket's exemplar (last write wins; the OpenMetrics
// scrape renders it as `# {trace_id="..."} value ts`).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf total. Reading the buckets is not atomic as a whole; the
// exposition tolerates the skew (each bucket is individually exact).
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// DefBuckets are the default latency buckets (seconds), spanning 1 ms
// to 10 s — a fit for request handling and optimisation runs.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// IOBuckets are latency buckets (seconds) for storage operations,
// spanning 100 µs to 1 s — a fit for fsync-bound appends.
var IOBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

// series is one sample stream of a family: a fixed label assignment
// plus the instrument (or callback) producing its value.
type series struct {
	labels []string // alternating key, value
	sig    string   // canonical signature of labels
	// Exactly one of the following is set.
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// value returns the scalar sample of a counter/gauge/func series.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return s.counter.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	default:
		return s.fn()
	}
}

// family is one named metric with its type, help text and series set.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	series          map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use; the
// instrument getters are idempotent, so hot paths may re-ask for a
// series instead of caching the instrument (caching is still cheaper).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// signature canonicalises a label pairing; label order is preserved as
// given (families keep a consistent order by construction).
func signature(labels []string) string {
	return strings.Join(labels, "\xff")
}

// validate panics on malformed metric or label names: these are
// programming errors, caught at first registration, never at scrape.
func validate(name string, labels []string) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: labels must be alternating key/value pairs", name))
	}
	for i := 0; i < len(labels); i += 2 {
		if !labelRe.MatchString(labels[i]) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, labels[i]))
		}
	}
}

// lookup returns (creating if needed) the family and the series for
// (name, labels), enforcing type and help consistency.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []string) *series {
	validate(name, labels)
	sig := signature(labels)

	r.mu.RLock()
	if f, ok := r.fams[name]; ok {
		s, ok := f.series[sig]
		if ok && f.typ == typ && s.fn == nil {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if s, ok := f.series[sig]; ok {
		if s.fn != nil {
			panic(fmt.Sprintf("obs: metric %q %v: registered as a callback series, cannot be re-obtained as an instrument", name, labels))
		}
		return s
	}
	s := &series{labels: append([]string(nil), labels...), sig: sig}
	switch typ {
	case typeCounter:
		s.counter = &Counter{}
	case typeGauge:
		s.gauge = &Gauge{}
	case typeHistogram:
		h := &Histogram{bounds: append([]float64(nil), f.buckets...)}
		if !sort.Float64sAreSorted(h.bounds) {
			panic(fmt.Sprintf("obs: metric %q: histogram buckets not sorted", name))
		}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		h.exemplars = make([]atomic.Pointer[Exemplar], len(h.bounds)+1)
		s.hist = h
	}
	f.series[sig] = s
	return s
}

// Counter returns the counter series for (name, labels), registering
// the family on first use. labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, typeCounter, nil, labels).counter
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, typeGauge, nil, labels).gauge
}

// Histogram returns the histogram series for (name, labels). The
// bucket bounds of a family are fixed by its first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return r.lookup(name, help, typeHistogram, buckets, labels).hist
}

// CounterFunc registers a scrape-time callback as a counter series:
// fn must be monotone (the campaign engine's atomic totals are). A
// second registration of the same (name, labels) panics.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, typeCounter, fn, labels)
}

// GaugeFunc registers a scrape-time callback as a gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, typeGauge, fn, labels)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []string) {
	validate(name, labels)
	if fn == nil {
		panic(fmt.Sprintf("obs: metric %q: nil callback", name))
	}
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if _, ok := f.series[sig]; ok {
		panic(fmt.Sprintf("obs: metric %q: duplicate callback series %v", name, labels))
	}
	f.series[sig] = &series{labels: append([]string(nil), labels...), sig: sig, fn: fn}
}

// Names returns the sorted names of every registered family; the
// docs-drift guard walks it against the OPERATIONS.md metrics table.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
