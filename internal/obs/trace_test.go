package obs

import (
	"sync"
	"testing"
)

func TestTraceRingBounded(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Record(TraceEvent{Iteration: i})
	}
	snap := r.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	if snap.Total != 10 {
		t.Fatalf("total = %d, want 10", snap.Total)
	}
	// Oldest-first emission order, keeping the most recent events.
	for i, ev := range snap.Events {
		if ev.Iteration != 6+i {
			t.Fatalf("event %d iteration = %d, want %d", i, ev.Iteration, 6+i)
		}
	}
}

func TestTraceRingPartial(t *testing.T) {
	r := NewTraceRing(8)
	for i := 0; i < 3; i++ {
		r.Record(TraceEvent{Iteration: i})
	}
	snap := r.Snapshot()
	if len(snap.Events) != 3 || snap.Total != 3 {
		t.Fatalf("snapshot = %d events / total %d, want 3/3", len(snap.Events), snap.Total)
	}
	for i, ev := range snap.Events {
		if ev.Iteration != i {
			t.Fatalf("event %d iteration = %d", i, ev.Iteration)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(TraceEvent{Iteration: i})
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 4000 {
		t.Fatalf("total = %d, want 4000", got)
	}
	if n := len(r.Snapshot().Events); n != 64 {
		t.Fatalf("retained %d, want 64", n)
	}
}

func TestTraceRingInvalidCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewTraceRing(0)
}

func TestTraceRingOnDrop(t *testing.T) {
	r := NewTraceRing(4)
	drops := 0
	r.OnDrop(func() { drops++ })
	for i := 0; i < 10; i++ {
		r.Record(TraceEvent{Iteration: i})
	}
	if drops != 6 {
		t.Fatalf("drop hook fired %d times, want 6 (10 events, cap 4)", drops)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
}
