package obs

import (
	"sync"
	"sync/atomic"
)

// spanShards is the fixed shard count; trace IDs are random, so the
// first ID byte spreads traces evenly.
const spanShards = 16

// SpanStoreOptions bounds a SpanStore.
type SpanStoreOptions struct {
	// MaxSpans bounds the total number of retained spans across all
	// traces; when a shard overflows its share, whole oldest-first
	// traces are evicted. Default 65536.
	MaxSpans int
	// MaxSpansPerTrace bounds one trace; spans past the bound are
	// dropped (counted per trace and globally). Default 512.
	MaxSpansPerTrace int
}

// SpanStore is a bounded sharded in-memory store of finished spans,
// keyed by trace ID for per-trace assembly. All methods are safe for
// concurrent use.
type SpanStore struct {
	maxPerTrace int
	maxPerShard int
	shards      [spanShards]spanShard

	recorded atomic.Uint64 // spans accepted
	dropped  atomic.Uint64 // spans dropped by the per-trace bound
	evicted  atomic.Uint64 // traces evicted by the store bound
}

type spanShard struct {
	mu     sync.Mutex
	traces map[TraceID]*traceBuf
	// order is the FIFO eviction queue of live trace IDs; head indexes
	// the oldest entry (the prefix is compacted away periodically so
	// the backing array stays bounded).
	order []TraceID
	head  int
	spans int
}

type traceBuf struct {
	spans   []SpanData
	dropped int
}

// NewSpanStore returns a store with the given bounds (zero fields
// take defaults).
func NewSpanStore(o SpanStoreOptions) *SpanStore {
	if o.MaxSpans <= 0 {
		o.MaxSpans = 65536
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	perShard := o.MaxSpans / spanShards
	if perShard < o.MaxSpansPerTrace {
		perShard = o.MaxSpansPerTrace
	}
	s := &SpanStore{maxPerTrace: o.MaxSpansPerTrace, maxPerShard: perShard}
	for i := range s.shards {
		s.shards[i].traces = map[TraceID]*traceBuf{}
	}
	return s
}

func (s *SpanStore) shard(id TraceID) *spanShard {
	return &s.shards[int(id[0])%spanShards]
}

// add retains one finished span, evicting oldest traces when the
// shard overflows.
func (s *SpanStore) add(sd SpanData) {
	sh := s.shard(sd.TraceID)
	sh.mu.Lock()
	buf, ok := sh.traces[sd.TraceID]
	if !ok {
		buf = &traceBuf{}
		sh.traces[sd.TraceID] = buf
		sh.order = append(sh.order, sd.TraceID)
	}
	if len(buf.spans) >= s.maxPerTrace {
		buf.dropped++
		sh.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	buf.spans = append(buf.spans, sd)
	sh.spans++
	var evicted int
	for sh.spans > s.maxPerShard && sh.head < len(sh.order) {
		old := sh.order[sh.head]
		sh.head++
		if old == sd.TraceID {
			// Never evict the trace being appended to: re-queue it
			// as the newest and keep scanning.
			sh.order = append(sh.order, old)
			continue
		}
		if buf, ok := sh.traces[old]; ok {
			sh.spans -= len(buf.spans)
			delete(sh.traces, old)
			evicted++
		}
	}
	if sh.head > len(sh.order)/2 && sh.head > 32 {
		sh.order = append(sh.order[:0:0], sh.order[sh.head:]...)
		sh.head = 0
	}
	sh.mu.Unlock()
	s.recorded.Add(1)
	if evicted > 0 {
		s.evicted.Add(uint64(evicted))
	}
}

// Trace returns a copy of the retained spans of one trace plus the
// number of spans its per-trace bound dropped; ok is false when the
// trace is unknown (never sampled, or already evicted).
func (s *SpanStore) Trace(id TraceID) (spans []SpanData, dropped int, ok bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	buf, ok := sh.traces[id]
	if !ok {
		return nil, 0, false
	}
	return append([]SpanData(nil), buf.spans...), buf.dropped, true
}

// SpanStoreStats is a point-in-time view of the store.
type SpanStoreStats struct {
	Traces   int    // live traces
	Spans    int    // live spans
	Recorded uint64 // spans accepted since creation
	Dropped  uint64 // spans dropped by the per-trace bound
	Evicted  uint64 // traces evicted by the store bound
}

// Stats returns current occupancy and lifetime totals.
func (s *SpanStore) Stats() SpanStoreStats {
	st := SpanStoreStats{
		Recorded: s.recorded.Load(),
		Dropped:  s.dropped.Load(),
		Evicted:  s.evicted.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Traces += len(sh.traces)
		st.Spans += sh.spans
		sh.mu.Unlock()
	}
	return st
}
