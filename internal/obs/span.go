package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Span tracing: a Tracer produces Spans (trace/span/parent IDs,
// monotonic start/duration, typed attributes, status) that feed a
// bounded sharded SpanStore with per-trace assembly. The design rules
// mirror the metrics side of the package:
//
//   - zero cost when disabled: a nil *Tracer and a nil *Span are valid
//     receivers for every method, so instrumented code pays one nil
//     check — no allocation, no branch into the store — when tracing
//     is off;
//   - sampled when enabled: the head decision is taken once per trace
//     (ratio-based, or inherited from a remote traceparent) and spans
//     of unsampled traces are still recorded individually when they
//     end in error or run longer than the tracer's slow threshold;
//   - stdlib only.

// TraceID identifies one trace: 16 random bytes, hex-encoded on the
// wire (W3C trace-id).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace: 8 random bytes (W3C
// parent-id).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: what crosses process
// boundaries inside a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Span status codes, following the OTLP convention.
const (
	StatusUnset = 0
	StatusOK    = 1
	StatusError = 2
)

// Granularity selects how deep the optimiser layers instrument
// themselves when a tracer is installed.
type Granularity int

const (
	// GranRun records one span per optimiser run (per algorithm).
	GranRun Granularity = iota
	// GranPhase additionally records the internal phases of each
	// algorithm (curve-fit support/refine, OBC seed sweep, SA anneal
	// loop, BBC sweep).
	GranPhase
)

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Store receives finished spans. Nil creates a store with default
	// bounds.
	Store *SpanStore
	// SampleRatio is the head-sampling probability for new traces in
	// [0, 1]. Traces continued from a remote traceparent inherit the
	// remote decision instead.
	SampleRatio float64
	// SlowThreshold, when positive, records any span whose duration
	// reaches it even if its trace is unsampled (the rest of the
	// trace stays absent; the partial trace marks the slow path).
	SlowThreshold time.Duration
	// Detail selects the optimiser instrumentation depth.
	Detail Granularity
}

// Tracer creates spans. A nil Tracer is valid and records nothing.
type Tracer struct {
	store  *SpanStore
	ratio  float64
	slow   time.Duration
	detail Granularity
	seed   atomic.Uint64 // splitmix64 state for ID generation
}

// NewTracer returns a tracer writing finished spans to its store.
func NewTracer(o TracerOptions) *Tracer {
	if o.Store == nil {
		o.Store = NewSpanStore(SpanStoreOptions{})
	}
	if o.SampleRatio < 0 {
		o.SampleRatio = 0
	}
	if o.SampleRatio > 1 {
		o.SampleRatio = 1
	}
	t := &Tracer{store: o.Store, ratio: o.SampleRatio, slow: o.SlowThreshold, detail: o.Detail}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: seeding tracer: %v", err))
	}
	t.seed.Store(binary.LittleEndian.Uint64(b[:]))
	return t
}

// Store returns the tracer's span store (nil for a nil tracer).
func (t *Tracer) Store() *SpanStore {
	if t == nil {
		return nil
	}
	return t.store
}

// rand64 returns the next pseudo-random word (splitmix64 over an
// atomic counter: lock-free, race-free, crypto-seeded).
func (t *Tracer) rand64() uint64 {
	z := t.seed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], t.rand64())
	}
	return id
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], t.rand64())
		binary.BigEndian.PutUint64(id[8:], t.rand64())
	}
	return id
}

// StartRoot begins a local root span. When parent is a valid remote
// SpanContext (extracted from a traceparent header or a persisted job
// spec) the new span continues that trace and inherits its sampling
// decision; otherwise a fresh trace ID is drawn and the head-sampling
// ratio decides. The returned context carries the span for StartSpan.
// A nil tracer returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, name: name, start: time.Now()}
	if parent.Valid() {
		s.sc = SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID(), Sampled: parent.Sampled}
		s.parent = parent.SpanID
	} else {
		sampled := t.ratio >= 1 || (t.ratio > 0 && float64(t.rand64()>>11)/(1<<53) < t.ratio)
		s.sc = SpanContext{TraceID: t.newTraceID(), SpanID: t.newSpanID(), Sampled: sampled}
	}
	return ContextWithSpan(ctx, s), s
}

// Span is one timed operation. All methods are valid on a nil
// receiver (no-ops); a span is owned by one goroutine until End.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time
	attrs  []Attr
	status uint8
	msg    string
	ended  atomic.Bool
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the span carried by ctx. Without a span
// in ctx (tracing disabled, or an uninstrumented call path) it
// returns (ctx, nil) at the cost of one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// StartChild starts a child span. Nil-safe: a nil receiver returns
// nil, so disabled tracing short-circuits through whole call trees.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	return &Span{
		tracer: t,
		name:   name,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: t.newSpanID(), Sampled: s.sc.Sampled},
		parent: s.sc.SpanID,
		start:  time.Now(),
	}
}

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the hex trace ID, or "" for a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// Sampled reports whether the span's trace took the head-sampling
// decision (false for nil spans).
func (s *Span) Sampled() bool { return s != nil && s.sc.Sampled }

// Phases reports whether the tracer asks for phase-level optimiser
// spans (GranPhase). False for nil spans, so the optimisers guard
// their phase instrumentation with a single call.
func (s *Span) Phases() bool { return s != nil && s.tracer.detail >= GranPhase }

// SetStart backdates the span's start time; lifecycle spans that
// cover an interval observed after the fact (queued-wait) use it
// before End.
func (s *Span) SetStart(t time.Time) {
	if s == nil {
		return
	}
	s.start = t
}

// SetString attaches a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, StringAttr(key, v))
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, IntAttr(key, v))
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, FloatAttr(key, v))
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, BoolAttr(key, v))
}

// OK marks the span status as explicitly successful.
func (s *Span) OK() {
	if s == nil {
		return
	}
	s.status = StatusOK
}

// Fail marks the span as failed; a nil err leaves the status alone.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.status = StatusError
	s.msg = err.Error()
}

// Duration returns the elapsed time since the span started (for
// ended spans callers should use the stored SpanData instead).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End finishes the span and hands it to the store when the trace is
// sampled — or, for unsampled traces, when the span failed or ran
// past the tracer's slow threshold. End is idempotent; attributes
// set after End are lost.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	dur := time.Since(s.start)
	t := s.tracer
	if !s.sc.Sampled && s.status != StatusError && (t.slow <= 0 || dur < t.slow) {
		return
	}
	t.store.add(SpanData{
		TraceID:   s.sc.TraceID,
		SpanID:    s.sc.SpanID,
		Parent:    s.parent,
		Name:      s.name,
		Start:     s.start,
		Duration:  dur,
		Attrs:     s.attrs,
		Status:    s.status,
		StatusMsg: s.msg,
	})
}

// Attribute value kinds.
const (
	attrString = iota
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed span attribute.
type Attr struct {
	Key  string
	kind uint8
	s    string
	i    int64
	f    float64
}

// StringAttr returns a string attribute.
func StringAttr(key, v string) Attr { return Attr{Key: key, kind: attrString, s: v} }

// IntAttr returns an integer attribute.
func IntAttr(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// FloatAttr returns a float attribute.
func FloatAttr(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// BoolAttr returns a boolean attribute.
func BoolAttr(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// Value returns the attribute value as an any (string, int64,
// float64 or bool).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.i != 0
	default:
		return a.s
	}
}

// SpanData is a finished span as retained by the SpanStore.
type SpanData struct {
	TraceID   TraceID
	SpanID    SpanID
	Parent    SpanID
	Name      string
	Start     time.Time
	Duration  time.Duration
	Attrs     []Attr
	Status    uint8
	StatusMsg string
}
