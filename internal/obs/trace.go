package obs

import "sync"

// TraceEvent is one step of an optimiser run: the candidate just
// evaluated, the running best, and — for simulated annealing — the
// temperature and acceptance statistics. A sequence of events is the
// convergence curve of the run (cost over evaluations/time), the view
// the source paper plots in its Section 7 experiments.
//
// Algorithm is the emitting optimiser ("SA", "BBC", "OBC-CF",
// "OBC-EE"); System is stamped by the campaign layer when one job
// spans many systems. Temperature, AcceptRate and Accepted carry
// SA-specific meaning; deterministic sweeps report Accepted as "the
// candidate improved the incumbent" and leave Temperature zero.
type TraceEvent struct {
	Algorithm   string  `json:"algorithm"`
	System      string  `json:"system,omitempty"`
	Iteration   int     `json:"iteration"`
	Evaluations int     `json:"evaluations"`
	Cost        float64 `json:"cost"`
	BestCost    float64 `json:"best_cost"`
	Temperature float64 `json:"temperature,omitempty"`
	AcceptRate  float64 `json:"accept_rate,omitempty"`
	Accepted    bool    `json:"accepted"`
	ElapsedUs   int64   `json:"elapsed_us"`
}

// TraceFunc receives trace events from an optimiser loop. Hooks must
// be safe for concurrent use when shared across concurrently running
// optimisers (a portfolio run emits from one goroutine per algorithm).
type TraceFunc func(TraceEvent)

// TraceSnapshot is a point-in-time copy of a ring: the retained events
// in emission order plus the lifetime total, so readers can tell how
// many early events the bound evicted (Total - len(Events)).
type TraceSnapshot struct {
	Events []TraceEvent `json:"events"`
	Total  uint64       `json:"total_events"`
}

// TraceRing is a bounded, concurrency-safe event buffer: it keeps the
// most recent cap events and counts everything ever recorded. One ring
// per job bounds trace memory no matter how long an optimiser runs.
type TraceRing struct {
	mu     sync.Mutex
	buf    []TraceEvent
	next   int // index the next event lands in once the ring is full
	total  uint64
	onDrop func()
}

// NewTraceRing returns a ring retaining the last cap events; cap must
// be positive.
func NewTraceRing(cap int) *TraceRing {
	if cap <= 0 {
		panic("obs: trace ring capacity must be positive")
	}
	return &TraceRing{buf: make([]TraceEvent, 0, cap)}
}

// OnDrop installs a hook called once per evicted event (outside the
// ring lock); flexray-serve wires it to the
// flexray_job_trace_dropped_total counter so ring exhaustion shows up
// in scrapes, not only in per-job trace reads.
func (r *TraceRing) OnDrop(fn func()) {
	r.mu.Lock()
	r.onDrop = fn
	r.mu.Unlock()
}

// Record appends an event, evicting the oldest once full. The method
// value ring.Record satisfies TraceFunc.
func (r *TraceRing) Record(ev TraceEvent) {
	r.mu.Lock()
	var dropped func()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
		dropped = r.onDrop
	}
	r.total++
	r.mu.Unlock()
	if dropped != nil {
		dropped()
	}
}

// Snapshot copies the retained events in emission order.
func (r *TraceRing) Snapshot() TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	events := make([]TraceEvent, 0, len(r.buf))
	events = append(events, r.buf[r.next:]...)
	events = append(events, r.buf[:r.next]...)
	return TraceSnapshot{Events: events, Total: r.total}
}

// Total returns the lifetime event count, including evicted events.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
