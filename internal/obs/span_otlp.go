package obs

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// OTLP-compatible JSON encoding of SpanData. The field names follow
// the OTLP/JSON span mapping (traceId, spanId, parentSpanId,
// startTimeUnixNano, endTimeUnixNano, attributes with typed value
// wrappers, status.code) so exported traces load into standard
// tooling; 64-bit integers are strings, as OTLP/JSON requires.

type otlpSpan struct {
	TraceID   string     `json:"traceId"`
	SpanID    string     `json:"spanId"`
	ParentID  string     `json:"parentSpanId,omitempty"`
	Name      string     `json:"name"`
	StartNano string     `json:"startTimeUnixNano"`
	EndNano   string     `json:"endTimeUnixNano"`
	Attrs     []otlpAttr `json:"attributes,omitempty"`
	Status    otlpStatus `json:"status"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	Str    *string  `json:"stringValue,omitempty"`
	Int    *string  `json:"intValue,omitempty"`
	Double *float64 `json:"doubleValue,omitempty"`
	Bool   *bool    `json:"boolValue,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

// MarshalJSON renders the span in the OTLP/JSON field layout.
func (sd SpanData) MarshalJSON() ([]byte, error) {
	o := otlpSpan{
		TraceID:   sd.TraceID.String(),
		SpanID:    sd.SpanID.String(),
		Name:      sd.Name,
		StartNano: strconv.FormatInt(sd.Start.UnixNano(), 10),
		EndNano:   strconv.FormatInt(sd.Start.Add(sd.Duration).UnixNano(), 10),
		Status:    otlpStatus{Code: int(sd.Status), Message: sd.StatusMsg},
	}
	if !sd.Parent.IsZero() {
		o.ParentID = sd.Parent.String()
	}
	for _, a := range sd.Attrs {
		oa := otlpAttr{Key: a.Key}
		switch a.kind {
		case attrInt:
			v := strconv.FormatInt(a.i, 10)
			oa.Value.Int = &v
		case attrFloat:
			f := a.f
			oa.Value.Double = &f
		case attrBool:
			b := a.i != 0
			oa.Value.Bool = &b
		default:
			s := a.s
			oa.Value.Str = &s
		}
		o.Attrs = append(o.Attrs, oa)
	}
	return json.Marshal(o)
}

// UnmarshalJSON decodes the OTLP/JSON layout produced by MarshalJSON
// (flexray-bench uses it to re-assemble exported traces).
func (sd *SpanData) UnmarshalJSON(b []byte) error {
	var o otlpSpan
	if err := json.Unmarshal(b, &o); err != nil {
		return err
	}
	tid, err := ParseTraceID(o.TraceID)
	if err != nil {
		return fmt.Errorf("obs: span traceId %q: %w", o.TraceID, err)
	}
	var sid SpanID
	if err := decodeSpanID(&sid, o.SpanID); err != nil {
		return fmt.Errorf("obs: span spanId %q: %w", o.SpanID, err)
	}
	var pid SpanID
	if o.ParentID != "" {
		if err := decodeSpanID(&pid, o.ParentID); err != nil {
			return fmt.Errorf("obs: span parentSpanId %q: %w", o.ParentID, err)
		}
	}
	startNS, err := strconv.ParseInt(o.StartNano, 10, 64)
	if err != nil {
		return fmt.Errorf("obs: span startTimeUnixNano: %w", err)
	}
	endNS, err := strconv.ParseInt(o.EndNano, 10, 64)
	if err != nil {
		return fmt.Errorf("obs: span endTimeUnixNano: %w", err)
	}
	*sd = SpanData{
		TraceID:   tid,
		SpanID:    sid,
		Parent:    pid,
		Name:      o.Name,
		Start:     time.Unix(0, startNS),
		Duration:  time.Duration(endNS - startNS),
		Status:    uint8(o.Status.Code),
		StatusMsg: o.Status.Message,
	}
	for _, oa := range o.Attrs {
		switch {
		case oa.Value.Int != nil:
			i, err := strconv.ParseInt(*oa.Value.Int, 10, 64)
			if err != nil {
				return fmt.Errorf("obs: span attribute %q: %w", oa.Key, err)
			}
			sd.Attrs = append(sd.Attrs, IntAttr(oa.Key, i))
		case oa.Value.Double != nil:
			sd.Attrs = append(sd.Attrs, FloatAttr(oa.Key, *oa.Value.Double))
		case oa.Value.Bool != nil:
			sd.Attrs = append(sd.Attrs, BoolAttr(oa.Key, *oa.Value.Bool))
		default:
			var s string
			if oa.Value.Str != nil {
				s = *oa.Value.Str
			}
			sd.Attrs = append(sd.Attrs, StringAttr(oa.Key, s))
		}
	}
	return nil
}

func decodeSpanID(dst *SpanID, v string) error {
	if len(v) != 16 || !isLowerHex(v) {
		return errTraceparentSpan
	}
	if _, err := hex.Decode(dst[:], []byte(v)); err != nil {
		return errTraceparentSpan
	}
	return nil
}
