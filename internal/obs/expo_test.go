package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition walks a text-format body line by line, enforcing the
// structural rules of the format: every sample belongs to a family
// announced by # HELP then # TYPE (in that order), family blocks never
// interleave, and sample lines are `name{labels} value`. It returns
// the family type by name and the raw sample lines per family.
func parseExposition(t *testing.T, body string) (types map[string]string, samples map[string][]string) {
	t.Helper()
	types = map[string]string{}
	samples = map[string][]string{}
	var current string // family currently open
	var sawHelp, sawType bool
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if name == current {
				t.Fatalf("line %d: duplicate HELP for %q", ln+1, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: family %q re-opened; blocks must not interleave", ln+1, name)
			}
			current, sawHelp, sawType = name, true, false
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if fields[0] != current || !sawHelp {
				t.Fatalf("line %d: TYPE for %q not directly after its HELP", ln+1, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, fields[1])
			}
			types[current] = fields[1]
			sawType = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			fam := name
			if _, ok := types[base]; ok && types[base] == "histogram" {
				fam = base
			}
			if fam != current || !sawType {
				t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, name, current)
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: sample without value: %q", ln+1, line)
			}
			val := line[sp+1:]
			if val != "+Inf" && val != "-Inf" && val != "NaN" {
				if _, err := strconv.ParseFloat(val, 64); err != nil {
					t.Fatalf("line %d: unparseable sample value %q: %v", ln+1, val, err)
				}
			}
			samples[fam] = append(samples[fam], line)
		}
	}
	return types, samples
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_req_total", "requests", "code", "200").Add(3)
	r.Counter("z_req_total", "requests", "code", "500").Inc()
	r.Gauge("a_depth", "queue depth").Set(7)
	h := r.Histogram("m_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	types, samples := parseExposition(t, body)

	if types["z_req_total"] != "counter" || types["a_depth"] != "gauge" || types["m_lat_seconds"] != "histogram" {
		t.Fatalf("family types wrong: %v", types)
	}
	// Families render sorted by name.
	if ia, im := strings.Index(body, "a_depth"), strings.Index(body, "m_lat_seconds"); ia > im {
		t.Fatal("families not sorted by name")
	}
	if len(samples["z_req_total"]) != 2 {
		t.Fatalf("want 2 counter series, got %v", samples["z_req_total"])
	}
	if !strings.Contains(body, `z_req_total{code="200"} 3`) {
		t.Fatalf("labelled counter sample missing:\n%s", body)
	}

	// Histogram: bucket counts must be cumulative/monotone, carry an
	// +Inf bucket equal to _count, and _sum must match.
	var prev uint64
	var infSeen bool
	for _, line := range samples["m_lat_seconds"] {
		switch {
		case strings.HasPrefix(line, "m_lat_seconds_bucket"):
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value: %v", err)
			}
			if v < prev {
				t.Fatalf("bucket counts not monotone at %q", line)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infSeen = true
				if v != 3 {
					t.Fatalf("+Inf bucket = %d, want 3", v)
				}
			}
		case strings.HasPrefix(line, "m_lat_seconds_count"):
			if !strings.HasSuffix(line, " 3") {
				t.Fatalf("_count = %q, want 3", line)
			}
		case strings.HasPrefix(line, "m_lat_seconds_sum"):
			v, _ := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if v < 5.054 || v > 5.056 {
				t.Fatalf("_sum = %v, want ~5.055", v)
			}
		}
	}
	if !infSeen {
		t.Fatal("no le=\"+Inf\" bucket rendered")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", "path", "a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped label not found; want %q in:\n%s", want, sb.String())
	}
	// The rendered body must stay single-line-per-sample: the raw
	// newline in the label value may not split the sample.
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, " ") {
			t.Fatalf("sample split across lines: %q", line)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("h_esc", "line one\nline two \\ done").Set(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP h_esc line one\nline two \\ done`) {
		t.Fatalf("help text not escaped:\n%s", sb.String())
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	r.Counter("served_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("cache control = %q", cc)
	}
	types, _ := parseExposition(t, rec.Body.String())
	for _, name := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_seconds_total", "served_total"} {
		if _, ok := types[name]; !ok {
			t.Fatalf("metric %q missing from scrape", name)
		}
	}
}

// TestOpenMetricsExposition pins the OpenMetrics flavour: counter
// families announced without the _total suffix, histogram exemplars on
// bucket lines, and the # EOF trailer — while the classic rendering
// stays exemplar-free.
func TestOpenMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_ops_total", "Ops.").Inc()
	h := r.Histogram("demo_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.Observe(0.5) // no exemplar for this bucket

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		"# HELP demo_ops Ops.\n",
		"# TYPE demo_ops counter\n",
		"demo_ops_total 1\n",
		`demo_seconds_bucket{le="0.1"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05 `,
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("OpenMetrics output does not end with # EOF")
	}

	var classic bytes.Buffer
	if err := r.WriteText(&classic); err != nil {
		t.Fatal(err)
	}
	cl := classic.String()
	if strings.Contains(cl, "trace_id") || strings.Contains(cl, "# EOF") {
		t.Errorf("classic output leaked OpenMetrics syntax:\n%s", cl)
	}
	if !strings.Contains(cl, "# TYPE demo_ops_total counter\n") {
		t.Errorf("classic output renamed the counter family:\n%s", cl)
	}

	// Content negotiation on the HTTP handler.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q, want openmetrics", ct)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Error("negotiated OpenMetrics body lacks # EOF")
	}
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q, want text/plain", ct)
	}
}
