package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTracer(ratio float64, o TracerOptions) (*Tracer, *SpanStore) {
	o.SampleRatio = ratio
	if o.Store == nil {
		o.Store = NewSpanStore(SpanStoreOptions{})
	}
	return NewTracer(o), o.Store
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name    string
		in      string
		ok      bool
		sampled bool
	}{
		{"sampled", valid, true, true},
		{"unsampled", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", true, false},
		{"surrounding space", "  " + valid + "  ", true, true},
		{"other flag bits ignored", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-03", true, true},
		{"flag bit 0 unset", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-02", true, false},
		{"future version extra fields", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", true, true},
		{"empty", "", false, false},
		{"three fields", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", false, false},
		{"version 00 extra field", valid + "-extra", false, false},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false, false},
		{"uppercase version", "0A-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false, false},
		{"one-char version", "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false, false},
		{"short trace id", "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01", false, false},
		{"uppercase trace id", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", false, false},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false, false},
		{"short span id", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01", false, false},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false, false},
		{"non-hex span id", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033zz-01", false, false},
		{"short flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1", false, false},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ParseTraceparent(tc.in)
			if tc.ok != (err == nil) {
				t.Fatalf("ParseTraceparent(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			}
			if !tc.ok {
				if sc.Valid() {
					t.Errorf("invalid input %q returned valid context %+v", tc.in, sc)
				}
				return
			}
			if !sc.Valid() {
				t.Fatalf("valid input %q returned invalid context", tc.in)
			}
			if sc.Sampled != tc.sampled {
				t.Errorf("Sampled = %v, want %v", sc.Sampled, tc.sampled)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr, _ := testTracer(1, TracerOptions{})
	_, span := tr.StartRoot(context.Background(), "root", SpanContext{})
	hdr := span.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") || len(hdr) != 55 {
		t.Fatalf("Traceparent() = %q, want 00-<32hex>-<16hex>-01", hdr)
	}
	sc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("reparsing own header %q: %v", hdr, err)
	}
	if sc != span.Context() {
		t.Errorf("round trip %+v != original %+v", sc, span.Context())
	}
	if FormatTraceparent(sc) != hdr {
		t.Errorf("FormatTraceparent(%+v) = %q, want %q", sc, FormatTraceparent(sc), hdr)
	}
	// Unsampled contexts round-trip the 00 flag byte.
	un := SpanContext{TraceID: sc.TraceID, SpanID: sc.SpanID, Sampled: false}
	if got, err := ParseTraceparent(FormatTraceparent(un)); err != nil || got != un {
		t.Errorf("unsampled round trip = %+v, %v; want %+v", got, err, un)
	}
	if (&Span{}).Traceparent() == "" {
		// a zero-value span formats its zero context; only nil is "".
	}
	var nilSpan *Span
	if nilSpan.Traceparent() != "" {
		t.Errorf("nil span Traceparent() = %q, want empty", nilSpan.Traceparent())
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-xx")
	f.Add("")
	f.Add("00--.-")
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseTraceparent(in)
		if err != nil {
			if sc.Valid() {
				t.Fatalf("error %v but valid context %+v", err, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("no error but invalid context for %q", in)
		}
		// Everything that parses must survive a format/parse cycle
		// with identical identity and sampling.
		again, err := ParseTraceparent(FormatTraceparent(sc))
		if err != nil {
			t.Fatalf("reparsing formatted %q: %v", FormatTraceparent(sc), err)
		}
		if again != sc {
			t.Fatalf("round trip %+v != %+v for input %q", again, sc, in)
		}
	})
}

func TestSpanTreeAssembly(t *testing.T) {
	tr, store := testTracer(1, TracerOptions{})
	ctx, root := tr.StartRoot(context.Background(), "request", SpanContext{})
	root.SetString("route", "/v1/jobs")
	ctx, child := StartSpan(ctx, "job")
	_, grand := StartSpan(ctx, "campaign.system")
	grand.SetInt("evaluations", 42)
	grand.End()
	child.End()
	root.End()

	spans, dropped, ok := store.Trace(root.Context().TraceID)
	if !ok || dropped != 0 {
		t.Fatalf("Trace() ok=%v dropped=%d, want true, 0", ok, dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
		if sd.TraceID != root.Context().TraceID {
			t.Errorf("span %q trace %s, want %s", sd.Name, sd.TraceID, root.Context().TraceID)
		}
	}
	if byName["job"].Parent != byName["request"].SpanID {
		t.Errorf("job parent %s, want request %s", byName["job"].Parent, byName["request"].SpanID)
	}
	if byName["campaign.system"].Parent != byName["job"].SpanID {
		t.Errorf("campaign.system parent %s, want job %s", byName["campaign.system"].Parent, byName["job"].SpanID)
	}
	if !byName["request"].Parent.IsZero() {
		t.Errorf("root has parent %s, want zero", byName["request"].Parent)
	}
	if got := byName["campaign.system"].Attrs[0].Value(); got != int64(42) {
		t.Errorf("evaluations attr = %v, want 42", got)
	}
}

func TestRemoteParentContinuation(t *testing.T) {
	tr, store := testTracer(0, TracerOptions{}) // ratio 0: only the remote decision samples
	remote, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if err != nil {
		t.Fatal(err)
	}
	_, span := tr.StartRoot(context.Background(), "request", remote)
	if !span.Sampled() {
		t.Fatal("span did not inherit the remote sampled flag")
	}
	if span.Context().TraceID != remote.TraceID {
		t.Fatalf("trace %s, want remote %s", span.Context().TraceID, remote.TraceID)
	}
	span.End()
	spans, _, ok := store.Trace(remote.TraceID)
	if !ok || len(spans) != 1 || spans[0].Parent != remote.SpanID {
		t.Fatalf("continued span not recorded under remote parent: %+v ok=%v", spans, ok)
	}
}

func TestUnsampledTailUpgrade(t *testing.T) {
	tr, store := testTracer(0, TracerOptions{SlowThreshold: 50 * time.Millisecond})

	_, fast := tr.StartRoot(context.Background(), "fast-ok", SpanContext{})
	fast.End()
	if _, _, ok := store.Trace(fast.Context().TraceID); ok {
		t.Error("unsampled fast span was recorded")
	}

	_, failed := tr.StartRoot(context.Background(), "failed", SpanContext{})
	failed.Fail(errors.New("boom"))
	failed.End()
	if spans, _, ok := store.Trace(failed.Context().TraceID); !ok || spans[0].Status != StatusError || spans[0].StatusMsg != "boom" {
		t.Errorf("error span not upgraded into the store: %+v ok=%v", spans, ok)
	}

	_, slow := tr.StartRoot(context.Background(), "slow", SpanContext{})
	slow.SetStart(time.Now().Add(-time.Second))
	slow.End()
	if _, _, ok := store.Trace(slow.Context().TraceID); !ok {
		t.Error("slow span not upgraded into the store")
	}
}

func TestNilTracerAndSpanSafety(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartRoot(context.Background(), "x", SpanContext{})
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	if tr.Store() != nil {
		t.Fatal("nil tracer returned a store")
	}
	// Every method must be a no-op on the nil span, including the whole
	// child tree derived from it.
	child := span.StartChild("child")
	if child != nil {
		t.Fatal("nil span returned a child")
	}
	span.SetString("k", "v")
	span.SetInt("k", 1)
	span.SetFloat("k", 1)
	span.SetBool("k", true)
	span.SetStart(time.Now())
	span.OK()
	span.Fail(errors.New("x"))
	span.End()
	if span.Sampled() || span.Phases() || span.TraceID() != "" || span.Traceparent() != "" || span.Duration() != 0 {
		t.Error("nil span leaked state")
	}
	if ctx2, s2 := StartSpan(ctx, "y"); s2 != nil || ctx2 != ctx {
		t.Error("StartSpan without a context span must return (ctx, nil)")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr, store := testTracer(1, TracerOptions{})
	_, span := tr.StartRoot(context.Background(), "once", SpanContext{})
	span.End()
	span.End()
	spans, _, _ := store.Trace(span.Context().TraceID)
	if len(spans) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(spans))
	}
}

func TestSpanStorePerTraceCap(t *testing.T) {
	store := NewSpanStore(SpanStoreOptions{MaxSpans: 4096, MaxSpansPerTrace: 8})
	tr, _ := testTracer(1, TracerOptions{Store: store})
	_, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	for i := 0; i < 20; i++ {
		root.StartChild(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	spans, dropped, ok := store.Trace(root.Context().TraceID)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(spans) != 8 || dropped != 13 {
		t.Errorf("got %d spans, %d dropped; want 8 kept, 13 dropped", len(spans), dropped)
	}
	if st := store.Stats(); st.Dropped != 13 || st.Spans != 8 {
		t.Errorf("Stats() = %+v, want Dropped=13 Spans=8", st)
	}
}

func TestSpanStoreEviction(t *testing.T) {
	// Per-shard budget is MaxSpans/16 floored at MaxSpansPerTrace, so
	// every shard holds at most 4 spans here: filling one shard with
	// single-span traces must evict the oldest traces, not grow.
	store := NewSpanStore(SpanStoreOptions{MaxSpans: 64, MaxSpansPerTrace: 4})
	tr, _ := testTracer(1, TracerOptions{Store: store})
	var ids []TraceID
	for i := 0; i < 50; i++ {
		_, sp := tr.StartRoot(context.Background(), "s", SpanContext{})
		sp.End()
		ids = append(ids, sp.Context().TraceID)
	}
	st := store.Stats()
	if st.Recorded != 50 {
		t.Errorf("Recorded = %d, want 50", st.Recorded)
	}
	if st.Evicted == 0 {
		t.Error("no traces evicted despite overflow")
	}
	if st.Spans > 64 {
		t.Errorf("store holds %d spans, bound is 64", st.Spans)
	}
	kept := 0
	for _, id := range ids {
		if _, _, ok := store.Trace(id); ok {
			kept++
		}
	}
	if kept != st.Traces {
		t.Errorf("reachable traces %d != Stats().Traces %d", kept, st.Traces)
	}
}

func TestSpanOTLPRoundTrip(t *testing.T) {
	tr, store := testTracer(1, TracerOptions{})
	_, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	child := root.StartChild("child")
	child.SetString("s", "v")
	child.SetInt("i", -7)
	child.SetFloat("f", 2.5)
	child.SetBool("b", true)
	child.Fail(errors.New("bad"))
	child.End()
	root.End()
	spans, _, _ := store.Trace(root.Context().TraceID)
	for _, sd := range spans {
		raw, err := json.Marshal(sd)
		if err != nil {
			t.Fatalf("marshal %q: %v", sd.Name, err)
		}
		// OTLP field naming on the wire.
		var fields map[string]any
		if err := json.Unmarshal(raw, &fields); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"traceId", "spanId", "name", "startTimeUnixNano", "endTimeUnixNano"} {
			if _, ok := fields[k]; !ok {
				t.Errorf("span %q JSON lacks %q: %s", sd.Name, k, raw)
			}
		}
		if sd.Parent.IsZero() {
			if _, ok := fields["parentSpanId"]; ok {
				t.Errorf("root span JSON carries parentSpanId: %s", raw)
			}
		}
		var back SpanData
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %q: %v", sd.Name, err)
		}
		if back.TraceID != sd.TraceID || back.SpanID != sd.SpanID || back.Parent != sd.Parent ||
			back.Name != sd.Name || back.Status != sd.Status || back.StatusMsg != sd.StatusMsg ||
			back.Duration != sd.Duration || !back.Start.Equal(sd.Start) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, sd)
		}
		if len(back.Attrs) != len(sd.Attrs) {
			t.Fatalf("round trip attrs %d, want %d", len(back.Attrs), len(sd.Attrs))
		}
		for i := range sd.Attrs {
			if back.Attrs[i].Key != sd.Attrs[i].Key || back.Attrs[i].Value() != sd.Attrs[i].Value() {
				t.Errorf("attr %d: got %v=%v, want %v=%v", i,
					back.Attrs[i].Key, back.Attrs[i].Value(), sd.Attrs[i].Key, sd.Attrs[i].Value())
			}
		}
	}
}

// TestSpanConcurrency hammers span creation/finish against trace
// assembly and stats scraping; run with -race it pins the store's
// synchronisation.
func TestSpanConcurrency(t *testing.T) {
	store := NewSpanStore(SpanStoreOptions{MaxSpans: 2048, MaxSpansPerTrace: 64})
	tr, _ := testTracer(1, TracerOptions{Store: store})
	const writers = 8
	stop := make(chan struct{})
	var ids sync.Map
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, root := tr.StartRoot(context.Background(), "root", SpanContext{})
				for c := 0; c < 4; c++ {
					ch := root.StartChild("child")
					ch.SetInt("c", int64(c))
					ch.End()
				}
				root.End()
				ids.Store(root.Context().TraceID, true)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids.Range(func(k, _ any) bool {
					spans, dropped, ok := store.Trace(k.(TraceID))
					if ok && dropped == 0 && len(spans) > 5 {
						panic(fmt.Sprintf("trace with %d spans, max is 5", len(spans)))
					}
					return true
				})
				_ = store.Stats()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	st := store.Stats()
	if st.Recorded == 0 {
		t.Fatal("no spans recorded")
	}
	if st.Spans > 2048 {
		t.Errorf("store exceeded its bound: %d spans", st.Spans)
	}
}
