// Package sim is a discrete-event simulator of the complete system:
// per-node real-time kernels (non-preemptable SCS tasks dispatched from
// the schedule table; preemptive fixed-priority FPS tasks running in
// the slack) and the FlexRay bus automaton (static slots with frame
// packing, dynamic slots with minislot counting and the
// latest-transmission check, per-FrameID priority queues in the CHI).
//
// The simulator serves two purposes: it validates the holistic analysis
// (an observed response can never exceed the analysed worst case) and
// it regenerates the paper's illustrative figures cycle by cycle
// (Fig. 1, Fig. 3, Fig. 4).
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/flexray"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/units"
)

// Options tune a simulation run.
type Options struct {
	// Repetitions is the number of hyper-periods of releases to
	// simulate. Values above 1 require the bus cycle to divide the
	// hyper-period (otherwise the static schedule table cannot be
	// replayed periodically) and return an error if it does not.
	Repetitions int
	// DrainFactor extends the bus simulation past the last release
	// by DrainFactor*hyperperiod so queued work completes.
	DrainFactor int
	// Trace enables recording of bus events (capped at TraceCap).
	Trace    bool
	TraceCap int
}

// DefaultOptions simulates one hyper-period with a 4x drain.
func DefaultOptions() Options {
	return Options{Repetitions: 1, DrainFactor: 4, TraceCap: 4096}
}

// TraceKind classifies bus trace events.
type TraceKind uint8

const (
	// TraceST is a static-segment frame transmission.
	TraceST TraceKind = iota
	// TraceDYN is a dynamic-segment frame transmission.
	TraceDYN
	// TraceMinislot is an unused dynamic slot (one minislot long).
	TraceMinislot
)

// TraceEvent is one bus-level occurrence.
type TraceEvent struct {
	Kind  TraceKind
	Cycle int64
	Slot  int // static slot number or dynamic FrameID
	Start units.Time
	End   units.Time
	Acts  []model.ActID // messages carried (empty for minislots)
}

// Result aggregates a simulation run.
type Result struct {
	// MaxResponse is the largest observed response time per
	// activity, measured from the graph instance release.
	MaxResponse map[model.ActID]units.Duration
	// Completions counts completed instances per activity.
	Completions map[model.ActID]int
	// Unfinished counts activity instances still pending when the
	// simulation drained.
	Unfinished int
	// DeadlineMisses counts observed instance completions after
	// their deadline.
	DeadlineMisses int
	// Trace is the bus trace (if enabled).
	Trace []TraceEvent
}

// event is a scheduled simulator callback.
type event struct {
	t   units.Time
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Simulator runs one system under one configuration and table.
type Simulator struct {
	sys   *model.System
	cfg   *flexray.Config
	table *schedule.Table
	opts  Options

	queue eventQueue
	seq   int64
	now   units.Time

	cpus    []*cpu
	pending map[int][]*pendingMsg // DYN CHI queues per FrameID
	maxFid  int

	res      *Result
	released int // instances released (tasks+messages)
	done     int

	// Join bookkeeping: an ET activity with several predecessors is
	// released only when the last one completes.
	arrived map[joinKey]int
	readyAt map[joinKey]units.Time

	lastRelease units.Time
	drainEnd    units.Time
	hyper       units.Duration
}

type pendingMsg struct {
	act   model.ActID
	inst  int
	ready units.Time
	prio  int
}

type joinKey struct {
	act  model.ActID
	inst int
}

// New prepares a simulator. The table must have been built for the same
// system and configuration (package sched does this).
func New(sys *model.System, cfg *flexray.Config, table *schedule.Table, opts Options) (*Simulator, error) {
	if opts.Repetitions <= 0 {
		opts.Repetitions = 1
	}
	if opts.DrainFactor <= 0 {
		opts.DrainFactor = 4
	}
	if opts.TraceCap <= 0 {
		opts.TraceCap = 4096
	}
	hyper := sys.App.HyperPeriod()
	if opts.Repetitions > 1 && int64(hyper)%int64(cfg.Cycle()) != 0 {
		return nil, fmt.Errorf("sim: %d repetitions need gdCycle (%v) to divide the hyper-period (%v)",
			opts.Repetitions, cfg.Cycle(), hyper)
	}
	s := &Simulator{
		sys: sys, cfg: cfg, table: table, opts: opts,
		pending: map[int][]*pendingMsg{},
		arrived: map[joinKey]int{},
		readyAt: map[joinKey]units.Time{},
		res: &Result{
			MaxResponse: map[model.ActID]units.Duration{},
			Completions: map[model.ActID]int{},
		},
		hyper: hyper,
	}
	s.maxFid = cfg.MaxFrameID()
	for n := 0; n < sys.Platform.NumNodes; n++ {
		s.cpus = append(s.cpus, newCPU(s, model.NodeID(n)))
	}
	return s, nil
}

func (s *Simulator) at(t units.Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{t, s.seq, fn})
}

// Run executes the simulation and returns the aggregated result.
func (s *Simulator) Run() (*Result, error) {
	app := &s.sys.App

	s.lastRelease = units.Time(int64(s.hyper) * int64(s.opts.Repetitions))
	s.drainEnd = s.lastRelease.Add(units.Duration(int64(s.hyper) * int64(s.opts.DrainFactor)))

	// Static schedule: replay table entries for each repetition.
	for rep := 0; rep < s.opts.Repetitions; rep++ {
		shift := units.Duration(int64(s.hyper) * int64(rep))
		for _, e := range s.table.Tasks {
			e := e
			end := e.End.Add(shift)
			inst := e.Instance + rep*s.graphInstances(app.Act(e.Act).Graph)
			s.released++
			s.at(end, func() { s.complete(e.Act, inst, end) })
		}
		for _, e := range s.table.Msgs {
			e := e
			deliver := e.Delivery.Add(shift)
			inst := e.Instance + rep*s.graphInstances(app.Act(e.Act).Graph)
			s.released++
			s.at(deliver, func() { s.complete(e.Act, inst, deliver) })
		}
	}

	// Event-triggered releases: FPS root tasks of every graph
	// instance.
	for g := range app.Graphs {
		tg := &app.Graphs[g]
		n := s.graphInstances(g) * s.opts.Repetitions
		for inst := 0; inst < n; inst++ {
			rel := units.Time(int64(tg.Period) * int64(inst))
			for _, id := range app.Roots(g) {
				a := app.Act(id)
				if !a.IsTask() || a.Policy != model.FPS {
					continue
				}
				id, inst := id, inst
				t := rel.Add(a.Release)
				s.released++
				s.at(t, func() { s.cpus[a.Node].release(id, inst, t) })
			}
		}
	}

	// Bus automaton: chain of dynamic-slot checks, cycle by cycle.
	if s.cfg.NumMinislots > 0 && len(app.Messages(int(model.DYN))) > 0 {
		s.at(s.cfg.DYNStart(0), func() { s.dynSlot(0, 1, 1) })
	}

	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.t > s.drainEnd {
			break
		}
		s.now = e.t
		e.fn()
	}

	s.res.Unfinished = s.released - s.done
	return s.res, nil
}

func (s *Simulator) graphInstances(g int) int {
	tg := &s.sys.App.Graphs[g]
	n := int64(s.hyper) / int64(tg.Period)
	if n == 0 {
		n = 1
	}
	return int(n)
}

// complete records the completion of an activity instance and releases
// its successors (FPS tasks become ready; DYN messages are enqueued in
// the CHI; TT successors are driven by the table and need no action).
func (s *Simulator) complete(act model.ActID, inst int, t units.Time) {
	app := &s.sys.App
	a := app.Act(act)
	period := app.Period(act)
	g := a.Graph
	localInst := inst % (s.graphInstances(g) * s.opts.Repetitions)
	release := units.Time(int64(period) * int64(localInst))
	resp := units.Duration(t - release)
	if resp > s.res.MaxResponse[act] {
		s.res.MaxResponse[act] = resp
	}
	if resp > app.Deadline(act) {
		s.res.DeadlineMisses++
	}
	s.res.Completions[act]++
	s.done++

	for _, succ := range a.Succs {
		sa := app.Act(succ)
		if sa.IsTT() {
			continue // table-driven
		}
		key := joinKey{succ, inst}
		s.arrived[key]++
		if t > s.readyAt[key] {
			s.readyAt[key] = t
		}
		if s.arrived[key] < len(sa.Preds) {
			continue // waiting for the remaining inputs
		}
		rt := s.readyAt[key]
		switch {
		case sa.IsTask():
			succ, inst := succ, inst
			rt = units.MaxTime(rt, release.Add(sa.Release))
			s.released++
			s.at(rt, func() { s.cpus[sa.Node].release(succ, inst, rt) })
		case sa.IsMessage() && sa.Class == model.DYN:
			fid := s.cfg.FrameID[succ]
			s.released++
			s.enqueueDYN(fid, &pendingMsg{succ, inst, rt, sa.Priority})
		}
	}
}

func (s *Simulator) enqueueDYN(fid int, m *pendingMsg) {
	q := append(s.pending[fid], m)
	sort.SliceStable(q, func(i, j int) bool {
		if q[i].prio != q[j].prio {
			return q[i].prio > q[j].prio
		}
		if q[i].act != q[j].act {
			return q[i].act < q[j].act
		}
		return q[i].inst < q[j].inst
	})
	s.pending[fid] = q
	if fid > s.maxFid {
		s.maxFid = fid
	}
}

// dynSlot processes dynamic slot `fid` of `cycle`, with the minislot
// counter at ms (1-based), exactly as Section 3 describes: the CHI
// buffers are inspected at the beginning of the slot; a ready frame is
// transmitted if it still fits (per the configured policy), stretching
// the slot to the frame length in minislots; otherwise the slot is a
// single minislot.
func (s *Simulator) dynSlot(cycle int64, fid, ms int) {
	nMS := s.cfg.NumMinislots
	if fid > s.maxFid || ms > nMS {
		s.nextCycle(cycle)
		return
	}
	slotStart := s.cfg.DYNStart(cycle).Add(units.Duration(ms-1) * s.cfg.MinislotLen)

	// Highest-priority ready message with this FrameID.
	q := s.pending[fid]
	pick := -1
	for i, m := range q {
		if m.ready <= slotStart {
			pick = i
			break
		}
	}
	if pick < 0 {
		s.trace(TraceEvent{TraceMinislot, cycle, fid, slotStart, slotStart.Add(s.cfg.MinislotLen), nil})
		s.at(slotStart.Add(s.cfg.MinislotLen), func() { s.dynSlot(cycle, fid+1, ms+1) })
		return
	}
	m := q[pick]
	if !s.cfg.FitsAt(&s.sys.App, m.act, ms) {
		// Too late in the segment: the slot degenerates to a
		// minislot and the message waits for the next cycle.
		s.trace(TraceEvent{TraceMinislot, cycle, fid, slotStart, slotStart.Add(s.cfg.MinislotLen), nil})
		s.at(slotStart.Add(s.cfg.MinislotLen), func() { s.dynSlot(cycle, fid+1, ms+1) })
		return
	}
	a := s.sys.App.Act(m.act)
	size := s.cfg.SizeInMinislots(a.C)
	s.pending[fid] = append(q[:pick:pick], q[pick+1:]...)
	deliver := slotStart.Add(a.C)
	slotEnd := slotStart.Add(units.Duration(size) * s.cfg.MinislotLen)
	s.trace(TraceEvent{TraceDYN, cycle, fid, slotStart, slotEnd, []model.ActID{m.act}})
	act, inst := m.act, m.inst
	s.at(deliver, func() { s.complete(act, inst, deliver) })
	s.at(slotEnd, func() { s.dynSlot(cycle, fid+1, ms+size) })
}

// nextCycle chains the bus automaton to the following cycle while there
// is anything left to transmit or releases still to come.
func (s *Simulator) nextCycle(cycle int64) {
	anyPending := false
	for _, q := range s.pending {
		if len(q) > 0 {
			anyPending = true
			break
		}
	}
	next := s.cfg.DYNStart(cycle + 1)
	if next > s.drainEnd {
		return
	}
	if !anyPending && next > s.lastRelease && s.queue.Len() == 0 {
		return
	}
	s.at(next, func() { s.dynSlot(cycle+1, 1, 1) })
}

func (s *Simulator) trace(e TraceEvent) {
	if !s.opts.Trace || len(s.res.Trace) >= s.opts.TraceCap {
		return
	}
	s.res.Trace = append(s.res.Trace, e)
}

// STTrace reconstructs the static-segment part of the bus trace from
// the schedule table (the simulator itself drives ST frames straight
// from the table); used by the protocol-trace example and golden tests.
func (s *Simulator) STTrace(maxCycles int64) []TraceEvent {
	var out []TraceEvent
	byInstance := map[[2]int64][]model.ActID{}
	for _, e := range s.table.Msgs {
		key := [2]int64{e.Cycle, int64(e.Slot)}
		byInstance[key] = append(byInstance[key], e.Act)
	}
	for cy := int64(0); cy < maxCycles; cy++ {
		for slot := 1; slot <= s.cfg.NumStaticSlots; slot++ {
			ev := TraceEvent{
				Kind:  TraceST,
				Cycle: cy, Slot: slot,
				Start: s.cfg.StaticSlotStart(cy, slot),
				End:   s.cfg.StaticSlotEnd(cy, slot),
				Acts:  byInstance[[2]int64{cy, int64(slot)}],
			}
			out = append(out, ev)
		}
	}
	return out
}
