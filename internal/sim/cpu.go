package sim

import (
	"sort"

	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/units"
)

// cpu simulates one node's kernel (Section 2): SCS tasks own the
// processor during their table reservations ("blackouts" here, since
// the table events drive their completions directly); FPS tasks run
// preemptively by priority in the remaining slack.
type cpu struct {
	sim  *Simulator
	node model.NodeID

	blackouts []schedule.Interval // absolute, sorted, replicated per repetition
	ready     []*job
	running   *job
	runStart  units.Time
	gen       int64 // invalidates stale run-slice events
}

type job struct {
	act       model.ActID
	inst      int
	remaining units.Duration
	release   units.Time
	prio      int
}

func newCPU(s *Simulator, n model.NodeID) *cpu {
	c := &cpu{sim: s, node: n}
	base := s.table.Busy(n)
	for rep := 0; rep < s.opts.Repetitions; rep++ {
		shift := units.Duration(int64(s.hyper) * int64(rep))
		for _, iv := range base {
			c.blackouts = append(c.blackouts, schedule.Interval{
				Start: iv.Start.Add(shift), End: iv.End.Add(shift),
			})
		}
	}
	sort.Slice(c.blackouts, func(i, j int) bool { return c.blackouts[i].Start < c.blackouts[j].Start })
	return c
}

// blackoutAt returns the blackout containing t, if any, and the start
// of the next blackout after t (or a far-future sentinel).
func (c *cpu) blackoutAt(t units.Time) (cur *schedule.Interval, nextStart units.Time) {
	i := sort.Search(len(c.blackouts), func(i int) bool { return c.blackouts[i].End > t })
	if i < len(c.blackouts) && c.blackouts[i].Start <= t {
		return &c.blackouts[i], 0
	}
	if i < len(c.blackouts) {
		return nil, c.blackouts[i].Start
	}
	return nil, units.Time(units.Infinite)
}

// release makes an FPS job ready; it preempts a lower-priority running
// job.
func (c *cpu) release(act model.ActID, inst int, t units.Time) {
	j := &job{
		act: act, inst: inst,
		remaining: c.sim.sys.App.Act(act).C,
		release:   t,
		prio:      c.sim.sys.App.Act(act).Priority,
	}
	c.ready = append(c.ready, j)
	c.reschedule(t)
}

// suspend charges the running job for time executed since runStart and
// puts it back on the ready queue.
func (c *cpu) suspend(now units.Time) {
	if c.running == nil {
		return
	}
	ran := units.Duration(now - c.runStart)
	if ran > c.running.remaining {
		ran = c.running.remaining
	}
	c.running.remaining -= ran
	if c.running.remaining > 0 {
		c.ready = append(c.ready, c.running)
	} else {
		// Completed exactly now; the completion event fires
		// separately, so nothing to do here. (reschedule is only
		// called with a running job from release/blackout paths,
		// which precede the completion event at equal timestamps
		// only when remaining hit zero; guard anyway.)
		act, inst := c.running.act, c.running.inst
		c.sim.at(now, func() { c.sim.complete(act, inst, now) })
	}
	c.running = nil
}

// pickNext removes and returns the highest-priority ready job
// (priority desc, then release asc, then ids for determinism).
func (c *cpu) pickNext() *job {
	if len(c.ready) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(c.ready); i++ {
		a, b := c.ready[i], c.ready[best]
		if a.prio > b.prio ||
			(a.prio == b.prio && (a.release < b.release ||
				(a.release == b.release && (a.act < b.act ||
					(a.act == b.act && a.inst < b.inst))))) {
			best = i
		}
	}
	j := c.ready[best]
	c.ready = append(c.ready[:best], c.ready[best+1:]...)
	return j
}

// reschedule re-evaluates what should run at `now`: called on release,
// on run-slice expiry and on blackout exit.
func (c *cpu) reschedule(now units.Time) {
	c.gen++
	if c.running != nil {
		// A release arrived while a job was running: preempt only
		// if strictly higher priority; otherwise keep running and
		// just refresh the slice event below.
		c.suspend(now)
	}
	cur, nextStart := c.blackoutAt(now)
	if cur != nil {
		// Inside an SCS reservation: nothing runs; wake at its end.
		gen := c.gen
		end := cur.End
		c.sim.at(end, func() {
			if gen == c.gen {
				c.reschedule(end)
			}
		})
		return
	}
	j := c.pickNext()
	if j == nil {
		return
	}
	c.running = j
	c.runStart = now
	slice := j.remaining
	finish := now.Add(slice)
	if nextStart < finish {
		slice = units.Duration(nextStart - now)
		finish = nextStart
	}
	gen := c.gen
	done := slice == j.remaining
	c.sim.at(finish, func() {
		if gen != c.gen {
			return
		}
		if done {
			j.remaining = 0
			c.running = nil
			c.gen++
			c.sim.complete(j.act, j.inst, finish)
			c.reschedule(finish)
		} else {
			c.reschedule(finish) // hit a blackout; suspend+wake
		}
	})
}
