package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flexray"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/units"
)

const (
	us = units.Microsecond
	ms = units.Millisecond
)

// pipeline builds, schedules and simulates a random BBC-configured
// system.
func pipeline(t testing.TB, nodes int, seed int64, opts Options) (*model.System, *flexray.Config, *Result, map[model.ActID]units.Duration) {
	t.Helper()
	p := synth.DefaultParams(nodes, seed)
	p.DeadlineFactor = 2.0
	sys, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	copts := core.DefaultOptions()
	copts.DYNGridCap = 8
	best, err := core.BBC(sys, copts)
	if err != nil {
		t.Fatal(err)
	}
	table, ana, err := sched.Build(sys, best.Config, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, best.Config, table, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	anaR := map[model.ActID]units.Duration{}
	for k, v := range ana.R {
		anaR[k] = v
	}
	return sys, best.Config, res, anaR
}

// TestSimulationNeverExceedsAnalysis is the soundness property tying
// the whole pipeline together: on randomized systems, no observed
// response may exceed the holistic worst-case bound.
func TestSimulationNeverExceedsAnalysis(t *testing.T) {
	for _, nodes := range []int{2, 3, 4} {
		for seed := int64(0); seed < 4; seed++ {
			sys, _, res, anaR := pipeline(t, nodes, 500+seed, DefaultOptions())
			for id, simR := range res.MaxResponse {
				if bound, ok := anaR[id]; ok && simR > bound {
					t.Errorf("n=%d seed=%d: %s simulated %v above analysed bound %v",
						nodes, seed, sys.App.Acts[id].Name, simR, bound)
				}
			}
			if res.Unfinished != 0 {
				t.Errorf("n=%d seed=%d: %d unfinished instances", nodes, seed, res.Unfinished)
			}
		}
	}
}

// TestSimulationCompletesEveryInstance: with a generous drain, every
// released instance finishes.
func TestSimulationCompletesEveryInstance(t *testing.T) {
	sys, _, res, _ := pipeline(t, 3, 77, DefaultOptions())
	for i := range sys.App.Acts {
		a := &sys.App.Acts[i]
		if res.Completions[a.ID] == 0 {
			t.Errorf("activity %s never completed", a.Name)
		}
	}
}

func TestTraceInvariants(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	opts.TraceCap = 100000
	_, cfg, res, _ := pipeline(t, 3, 88, opts)
	var prevEnd units.Time
	for i, e := range res.Trace {
		if e.End <= e.Start {
			t.Fatalf("trace %d: empty interval [%v,%v)", i, e.Start, e.End)
		}
		if e.Start < prevEnd {
			t.Fatalf("trace %d: bus events overlap (%v < %v)", i, e.Start, prevEnd)
		}
		prevEnd = e.End
		// Every event lies inside the dynamic segment of its cycle.
		dynStart := cfg.DYNStart(e.Cycle)
		dynEnd := cfg.CycleStart(e.Cycle + 1)
		if e.Start < dynStart || e.End > dynEnd {
			t.Fatalf("trace %d: event [%v,%v) outside DYN segment [%v,%v)",
				i, e.Start, e.End, dynStart, dynEnd)
		}
		if e.Kind == TraceMinislot && e.End-e.Start != units.Time(cfg.MinislotLen) {
			t.Fatalf("trace %d: minislot of length %v", i, e.End-e.Start)
		}
	}
}

func TestPreemptionSemantics(t *testing.T) {
	// lo (prio 1, C=300µs) released at 0; hi (prio 9, C=100µs)
	// released at 100µs: lo runs [0,100), is preempted for [100,200),
	// resumes [200,400). R(lo) = 400µs, R(hi) = 200µs - 100µs = 100µs.
	b := model.NewBuilder("preempt", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	lo := b.PrioTask(g, "lo", 0, 300*us, 1)
	hi := b.PrioTask(g, "hi", 0, 100*us, 9)
	b.Release(hi, 100*us)
	peer := b.PrioTask(g, "peer", 1, 10*us, 1)
	_ = peer
	sys := b.MustBuild()
	cfg := &flexray.Config{MinislotLen: us, NumMinislots: 0, FrameID: map[model.ActID]int{}}
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg, table, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxResponse[lo]; got != 400*us {
		t.Errorf("R(lo) = %v, want 400µs (preempted once)", got)
	}
	// hi's response is measured from the graph release (its Release
	// offset delays its start): completes at 200µs.
	if got := res.MaxResponse[hi]; got != 200*us {
		t.Errorf("R(hi) = %v, want 200µs", got)
	}
}

func TestFPSWaitsForSCSBlackout(t *testing.T) {
	// An SCS reservation [0,1ms) blocks an FPS job released at 0; it
	// completes at 1ms + C.
	b := model.NewBuilder("blackout", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	scs := b.Task(g, "scs", 0, 1*ms, model.SCS)
	fps := b.PrioTask(g, "fps", 0, 200*us, 5)
	peer := b.PrioTask(g, "peer", 1, 10*us, 1)
	_, _ = scs, peer
	sys := b.MustBuild()
	cfg := &flexray.Config{MinislotLen: us, NumMinislots: 0, FrameID: map[model.ActID]int{}}
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg, table, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxResponse[fps]; got != 1200*us {
		t.Errorf("R(fps) = %v, want 1200µs (blackout + C)", got)
	}
}

func TestJoinWaitsForAllPredecessors(t *testing.T) {
	// join has two FPS predecessors with different finish times; it
	// must start only after the later one.
	b := model.NewBuilder("join", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	fast := b.PrioTask(g, "fast", 0, 100*us, 9)
	slow := b.PrioTask(g, "slow", 1, 700*us, 9)
	join := b.PrioTask(g, "join", 0, 50*us, 5)
	b.Edge(fast, join)
	b.Edge(slow, join)
	// Cross-node edge without a message is rejected by validation,
	// so keep join on node 0 and let slow's completion arrive via a
	// DYN message.
	sys := func() *model.System {
		b := model.NewBuilder("join", 2)
		g := b.Graph("g", 10*ms, 10*ms)
		fast := b.PrioTask(g, "fast", 0, 100*us, 9)
		slow := b.PrioTask(g, "slow", 1, 700*us, 9)
		join := b.PrioTask(g, "join", 0, 50*us, 5)
		b.Edge(fast, join)
		b.Message("m_slow", model.DYN, 30*us, slow, join, 3)
		return b.MustBuild()
	}()
	_, _, _ = fast, slow, join
	mID := model.None
	joinID := model.None
	for i := range sys.App.Acts {
		switch sys.App.Acts[i].Name {
		case "m_slow":
			mID = sys.App.Acts[i].ID
		case "join":
			joinID = sys.App.Acts[i].ID
		}
	}
	cfg := &flexray.Config{
		MinislotLen: 10 * us, NumMinislots: 20,
		FrameID: map[model.ActID]int{mID: 1},
	}
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg, table, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// join must finish after m_slow delivered (slow finishes at
	// 700µs; the message goes in the following DYN slot).
	if res.MaxResponse[joinID] <= res.MaxResponse[mID] {
		t.Errorf("join (R=%v) did not wait for m_slow (R=%v)",
			res.MaxResponse[joinID], res.MaxResponse[mID])
	}
	if res.Completions[joinID] != 1 {
		t.Errorf("join completed %d times, want 1", res.Completions[joinID])
	}
}

func TestDYNPriorityWithinSharedFrameID(t *testing.T) {
	// Two messages share FrameID 1 from the same node; the higher
	// priority one transmits first.
	b := model.NewBuilder("shared", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	s1 := b.Task(g, "s1", 0, 0, model.SCS)
	s2 := b.Task(g, "s2", 0, 0, model.SCS)
	r1 := b.PrioTask(g, "r1", 1, 0, 1)
	r2 := b.PrioTask(g, "r2", 1, 0, 1)
	mLo := b.Message("mLo", model.DYN, 20*us, s1, r1, 1)
	mHi := b.Message("mHi", model.DYN, 20*us, s2, r2, 9)
	sys := b.MustBuild()
	cfg := &flexray.Config{
		StaticSlotLen: 10 * us, NumStaticSlots: 1, StaticSlotOwner: []model.NodeID{0},
		MinislotLen: 10 * us, NumMinislots: 10,
		FrameID: map[model.ActID]int{mLo: 1, mHi: 1},
	}
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg, table, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MaxResponse[mHi] < res.MaxResponse[mLo]) {
		t.Errorf("priority inversion: R(mHi)=%v, R(mLo)=%v",
			res.MaxResponse[mHi], res.MaxResponse[mLo])
	}
	// mLo waits for the next cycle: cycle length 110µs, so it is
	// delivered in cycle 1.
	if res.MaxResponse[mLo] < 110*us {
		t.Errorf("R(mLo) = %v, want at least one full cycle", res.MaxResponse[mLo])
	}
}

func TestRepetitionsRequireDivisibility(t *testing.T) {
	sys, cfg, _, _ := pipeline(t, 2, 99, DefaultOptions())
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Repetitions = 2
	if int64(sys.App.HyperPeriod())%int64(cfg.Cycle()) != 0 {
		if _, err := New(sys, cfg, table, opts); err == nil {
			t.Fatal("indivisible repetition accepted")
		}
	}
}

func TestRepetitionsWithDivisibleCycle(t *testing.T) {
	// Hand system whose cycle divides the hyper-period exactly:
	// cycle 500µs, period 10ms.
	b := model.NewBuilder("reps", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	t1 := b.Task(g, "t1", 0, 100*us, model.SCS)
	t2 := b.Task(g, "t2", 1, 100*us, model.SCS)
	b.Message("m", model.ST, 50*us, t1, t2, 0)
	sys := b.MustBuild()
	cfg := &flexray.Config{
		StaticSlotLen: 100 * us, NumStaticSlots: 2, StaticSlotOwner: []model.NodeID{0, 1},
		MinislotLen: 10 * us, NumMinislots: 30,
		FrameID: map[model.ActID]int{},
	}
	if int64(sys.App.HyperPeriod())%int64(cfg.Cycle()) != 0 {
		t.Fatalf("fixture cycle %v does not divide 10ms", cfg.Cycle())
	}
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Repetitions = 3
	s, err := New(sys, cfg, table, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.App.Acts {
		a := &sys.App.Acts[i]
		if got := res.Completions[a.ID]; got != 3 {
			t.Errorf("%s completed %d times, want 3", a.Name, got)
		}
	}
}

func TestSTTraceListsTableContent(t *testing.T) {
	sys, cfg, _, _ := pipeline(t, 2, 111, DefaultOptions())
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, cfg, table, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := s.STTrace(2)
	want := 2 * cfg.NumStaticSlots
	if len(tr) != want {
		t.Fatalf("STTrace entries = %d, want %d", len(tr), want)
	}
	for _, e := range tr {
		if e.Kind != TraceST {
			t.Errorf("non-ST event in STTrace")
		}
		if e.End-e.Start != units.Time(cfg.StaticSlotLen) {
			t.Errorf("ST slot length %v, want %v", e.End-e.Start, cfg.StaticSlotLen)
		}
	}
}
