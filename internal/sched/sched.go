// Package sched implements the global scheduling algorithm of Fig. 2:
// a list scheduler that builds the static schedule table (start times
// for SCS tasks, slot assignments for ST messages) over the application
// hyper-period, ordering the ready list by a modified critical-path
// metric (ref [12]) and — optionally — placing each SCS task where the
// holistic analysis reports the least damage to FPS tasks and DYN
// messages (schedule_TT_task, Fig. 2 lines 10-12).
package sched

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/flexray"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/units"
)

// Options tune the scheduler.
type Options struct {
	// PlacementCandidates is the number of alternative start times
	// evaluated for each SCS task. 1 means plain first-fit (no
	// holistic evaluation); larger values implement Fig. 2 line 11
	// by running the analysis for each candidate gap and keeping the
	// cheapest. The paper's approach corresponds to values > 1; the
	// experiments default to 1 for the outer optimisation loops and
	// use 3 for the final configuration.
	PlacementCandidates int
	// Analysis options used for candidate evaluation and the final
	// run.
	Analysis analysis.Options
}

// DefaultOptions returns first-fit placement with default analysis.
func DefaultOptions() Options {
	return Options{PlacementCandidates: 1, Analysis: analysis.DefaultOptions()}
}

// instKey identifies one instance of a TT activity inside the
// hyper-period.
type instKey struct {
	act  model.ActID
	inst int
}

// Build runs the global scheduling algorithm for the given bus
// configuration: it constructs the static schedule table for every
// instance of every TT activity inside the hyper-period and then runs
// the holistic analysis once over the completed table. Scheduling
// failures (an ST message that finds no slot) are reported as an
// error; an unschedulable-but-constructible system is NOT an error —
// the cost function of the returned result captures it.
func Build(sys *model.System, cfg *flexray.Config, opts Options) (*schedule.Table, *analysis.Result, error) {
	table, err := BuildTable(sys, cfg, opts)
	if err != nil {
		return nil, nil, err
	}
	res := analysis.New(sys, cfg, table, opts.Analysis).Run()
	return table, res, nil
}

// BuildTable runs the table-construction part of the global scheduling
// algorithm without the final holistic analysis. Callers that hold a
// reusable analysis session (core.Session, the campaign engine workers)
// use it to bind their own analyzer to the finished table; Build is
// BuildTable plus one fresh analysis.
//
// With PlacementCandidates <= 1 (plain first-fit) the resulting table
// depends only on the slot geometry — static slot length, count,
// owners, and the dynamic segment length — never on the FrameID
// assignment, which is what makes schedule-table reuse across FrameID
// moves sound.
func BuildTable(sys *model.System, cfg *flexray.Config, opts Options) (*schedule.Table, error) {
	app := &sys.App
	horizon := app.HyperPeriod()
	table := schedule.New(cfg, horizon)

	type node struct {
		key      instKey
		release  units.Time // graph instance release + own offset
		asap     units.Time
		remain   units.Duration // critical-path priority
		pendPred int            // unscheduled TT predecessors
	}
	nodes := map[instKey]*node{}
	var ready []*node

	// Instantiate every TT activity for each graph instance in the
	// hyper-period.
	for g := range app.Graphs {
		tg := &app.Graphs[g]
		rp, err := app.RemainingPath(g)
		if err != nil {
			return nil, err
		}
		n := int64(horizon / tg.Period)
		if n == 0 {
			n = 1
		}
		for inst := int64(0); inst < n; inst++ {
			base := units.Time(int64(tg.Period) * inst)
			for _, id := range tg.Acts {
				a := app.Act(id)
				if !a.IsTT() {
					continue
				}
				pend := 0
				for _, p := range a.Preds {
					if app.Act(p).IsTT() {
						pend++
					}
				}
				nd := &node{
					key:      instKey{id, int(inst)},
					release:  base.Add(a.Release),
					remain:   rp[id],
					pendPred: pend,
				}
				nd.asap = nd.release
				nodes[nd.key] = nd
				if pend == 0 {
					ready = append(ready, nd)
				}
			}
		}
	}

	finish := func(nd *node, f units.Time) {
		a := app.Act(nd.key.act)
		for _, s := range a.Succs {
			sa := app.Act(s)
			if !sa.IsTT() {
				continue
			}
			sk := instKey{s, nd.key.inst}
			sn, ok := nodes[sk]
			if !ok {
				continue
			}
			if f > sn.asap {
				sn.asap = f
			}
			sn.pendPred--
			if sn.pendPred == 0 {
				ready = append(ready, sn)
			}
		}
	}

	// One resettable analyzer serves every placement-candidate trial:
	// the configuration stays fixed across trials, so its DYN
	// interference environments are built once for the whole schedule
	// construction.
	var trialAn *analysis.Analyzer
	if opts.PlacementCandidates > 1 {
		trialAn = analysis.NewReusable(sys, opts.Analysis)
	}

	for len(ready) > 0 {
		// Select the ready activity with the greatest remaining
		// critical path (Fig. 2 line 2); earliest ASAP breaks ties,
		// then id for determinism.
		sort.Slice(ready, func(i, j int) bool {
			a, b := ready[i], ready[j]
			if a.remain != b.remain {
				return a.remain > b.remain
			}
			if a.asap != b.asap {
				return a.asap < b.asap
			}
			if a.key.act != b.key.act {
				return a.key.act < b.key.act
			}
			return a.key.inst < b.key.inst
		})
		nd := ready[0]
		ready = ready[1:]
		a := app.Act(nd.key.act)

		if a.IsTask() {
			start, err := placeTask(cfg, table, trialAn, nd.key, a, nd.asap, opts)
			if err != nil {
				return nil, err
			}
			finish(nd, start.Add(a.C))
		} else {
			e, err := table.PlaceMessage(app, nd.key.act, nd.key.inst, nd.asap)
			if err != nil {
				return nil, fmt.Errorf("sched: %w", err)
			}
			finish(nd, e.Delivery)
		}
	}
	return table, nil
}

// placeTask implements schedule_TT_task: it finds candidate start
// times at or after the task's ASAP and keeps the one the holistic
// analysis likes best (or plain first-fit when only one candidate is
// requested). Candidate trials rebind the shared analyzer to each
// trial table; the configuration-derived analysis caches survive every
// rebind because cfg never changes within one build.
func placeTask(cfg *flexray.Config, table *schedule.Table, trialAn *analysis.Analyzer,
	key instKey, a *model.Activity, asap units.Time, opts Options) (units.Time, error) {

	k := opts.PlacementCandidates
	if k <= 1 {
		start := table.FirstGap(a.Node, asap, a.C)
		return start, table.PlaceTask(key.act, key.inst, a.Node, start, a.C)
	}

	cands := table.Gaps(a.Node, asap, a.C, k)
	if len(cands) == 0 {
		return 0, fmt.Errorf("sched: no gap for task %q on node %d", a.Name, a.Node)
	}
	bestIdx := 0
	bestCost := 0.0
	for i, start := range cands {
		trial := table.Clone()
		if err := trial.PlaceTask(key.act, key.inst, a.Node, start, a.C); err != nil {
			continue
		}
		trialAn.Reset(cfg, trial)
		res := trialAn.Run()
		if i == 0 || res.Cost < bestCost {
			bestIdx, bestCost = i, res.Cost
		}
	}
	start := cands[bestIdx]
	return start, table.PlaceTask(key.act, key.inst, a.Node, start, a.C)
}
