package sched_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flexray"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/units"
)

const (
	us = units.Microsecond
	ms = units.Millisecond
)

// genConfigured returns a random system with its BBC configuration —
// the cheapest way to obtain a valid (system, config) pair.
func genConfigured(t testing.TB, nodes int, seed int64) (*model.System, *flexray.Config) {
	t.Helper()
	p := synth.DefaultParams(nodes, seed)
	p.DeadlineFactor = 2.0
	sys, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.DYNGridCap = 8
	res, err := core.BBC(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, res.Config
}

func TestBuildPlacesEveryTTInstance(t *testing.T) {
	sys, cfg := genConfigured(t, 3, 21)
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hyper := sys.App.HyperPeriod()
	for _, id := range sys.App.Tasks(int(model.SCS)) {
		want := int(hyper / sys.App.Period(id))
		if got := len(table.TaskEntries(id)); got != want {
			t.Errorf("task %d: %d instances in table, want %d", id, got, want)
		}
	}
	for _, id := range sys.App.Messages(int(model.ST)) {
		want := int(hyper / sys.App.Period(id))
		if got := len(table.MsgEntries(id)); got != want {
			t.Errorf("ST message %d: %d instances, want %d", id, got, want)
		}
	}
}

func TestBuildRespectsPrecedence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		sys, cfg := genConfigured(t, 3, seed)
		table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Index finish times per (act, instance).
		finish := map[[2]int]units.Time{}
		for _, e := range table.Tasks {
			finish[[2]int{int(e.Act), e.Instance}] = e.End
		}
		for _, e := range table.Msgs {
			finish[[2]int{int(e.Act), e.Instance}] = e.Delivery
		}
		start := func(act model.ActID, inst int) (units.Time, bool) {
			for _, e := range table.TaskEntries(act) {
				if e.Instance == inst {
					return e.Start, true
				}
			}
			for _, e := range table.MsgEntries(act) {
				if e.Instance == inst {
					return e.TxStart, true
				}
			}
			return 0, false
		}
		for i := range sys.App.Acts {
			a := &sys.App.Acts[i]
			if !a.IsTT() {
				continue
			}
			n := int(sys.App.HyperPeriod() / sys.App.Period(a.ID))
			for inst := 0; inst < n; inst++ {
				s, ok := start(a.ID, inst)
				if !ok {
					t.Fatalf("seed %d: activity %s instance %d missing", seed, a.Name, inst)
				}
				for _, p := range a.Preds {
					if !sys.App.Acts[p].IsTT() {
						continue
					}
					pf, ok := finish[[2]int{int(p), inst}]
					if !ok {
						continue
					}
					if s < pf {
						t.Errorf("seed %d: %s[%d] starts %v before pred %s finishes %v",
							seed, a.Name, inst, s, sys.App.Acts[p].Name, pf)
					}
				}
			}
		}
	}
}

func TestBuildHonoursGraphReleases(t *testing.T) {
	sys, cfg := genConfigured(t, 2, 33)
	table, _, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range table.Tasks {
		release := units.Time(int64(sys.App.Period(e.Act)) * int64(e.Instance))
		if e.Start < release {
			t.Errorf("task %d instance %d starts %v before its release %v",
				e.Act, e.Instance, e.Start, release)
		}
	}
	for _, e := range table.Msgs {
		release := units.Time(int64(sys.App.Period(e.Act)) * int64(e.Instance))
		if e.TxStart < release {
			t.Errorf("message %d instance %d transmitted %v before release %v",
				e.Act, e.Instance, e.TxStart, release)
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	sys, cfg := genConfigured(t, 3, 44)
	t1, r1, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t2, r2, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Tasks) != len(t2.Tasks) || len(t1.Msgs) != len(t2.Msgs) {
		t.Fatal("different table sizes across runs")
	}
	for i := range t1.Tasks {
		if t1.Tasks[i] != t2.Tasks[i] {
			t.Fatalf("task entry %d differs: %+v vs %+v", i, t1.Tasks[i], t2.Tasks[i])
		}
	}
	for i := range t1.Msgs {
		if t1.Msgs[i] != t2.Msgs[i] {
			t.Fatalf("msg entry %d differs: %+v vs %+v", i, t1.Msgs[i], t2.Msgs[i])
		}
	}
	if r1.Cost != r2.Cost {
		t.Errorf("cost differs: %v vs %v", r1.Cost, r2.Cost)
	}
}

func TestPlacementCandidatesImproveOrMatchFirstFit(t *testing.T) {
	sys, cfg := genConfigured(t, 2, 55)
	ff, err := func() (float64, error) {
		_, r, err := sched.Build(sys, cfg, sched.DefaultOptions())
		if err != nil {
			return 0, err
		}
		return r.Cost, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.DefaultOptions()
	opts.PlacementCandidates = 3
	_, r, err := sched.Build(sys, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate evaluation picks the placement the analysis likes
	// best at each step; it is a greedy improvement, so the final
	// cost is usually (not provably) better. Assert it never
	// catastrophically regresses.
	if r.Cost > ff+1000 {
		t.Errorf("candidate placement cost %.1f much worse than first-fit %.1f", r.Cost, ff)
	}
}

func TestBuildSmallHandSystem(t *testing.T) {
	// Two SCS tasks with a message between them: t1 [0,100µs) on N0,
	// message in N0's slot, then t2 after delivery on N1.
	b := model.NewBuilder("hand", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	t1 := b.Task(g, "t1", 0, 100*us, model.SCS)
	t2 := b.Task(g, "t2", 1, 200*us, model.SCS)
	m := b.Message("m", model.ST, 50*us, t1, t2, 0)
	sys := b.MustBuild()
	cfg := &flexray.Config{
		StaticSlotLen:   100 * us,
		NumStaticSlots:  2,
		StaticSlotOwner: []model.NodeID{0, 1},
		MinislotLen:     10 * us,
		NumMinislots:    10,
		FrameID:         map[model.ActID]int{},
	}
	table, res, err := sched.Build(sys, cfg, sched.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	te1 := table.TaskEntries(t1)[0]
	if te1.Start != 0 || te1.End != units.Time(100*us) {
		t.Errorf("t1 scheduled [%v,%v), want [0,100µs)", te1.Start, te1.End)
	}
	me := table.MsgEntries(m)[0]
	// First N0 slot at or after 100µs is slot 1 of cycle 1 (cycle =
	// 300µs): transmission at 300µs, delivery 400µs.
	if me.Cycle != 1 || me.Slot != 1 {
		t.Errorf("message in cycle %d slot %d, want cycle 1 slot 1", me.Cycle, me.Slot)
	}
	if me.Delivery != units.Time(400*us) {
		t.Errorf("delivery = %v, want 400µs", me.Delivery)
	}
	te2 := table.TaskEntries(t2)[0]
	if te2.Start < me.Delivery {
		t.Errorf("t2 starts %v before message delivery %v", te2.Start, me.Delivery)
	}
	if !res.Schedulable {
		t.Errorf("hand system unschedulable: %v", res.Violations)
	}
	// Response of t2: delivery 400µs + 200µs = 600µs from release.
	if got := res.R[t2]; got != 600*us {
		t.Errorf("R(t2) = %v, want 600µs", got)
	}
}

func TestBuildFailsWhenSTSenderHasNoSlot(t *testing.T) {
	b := model.NewBuilder("noslot", 2)
	g := b.Graph("g", 10*ms, 10*ms)
	t1 := b.Task(g, "t1", 0, 100*us, model.SCS)
	t2 := b.Task(g, "t2", 1, 200*us, model.SCS)
	b.Message("m", model.ST, 50*us, t1, t2, 0)
	sys := b.MustBuild()
	cfg := &flexray.Config{
		StaticSlotLen:   100 * us,
		NumStaticSlots:  1,
		StaticSlotOwner: []model.NodeID{1}, // sender N0 owns nothing
		MinislotLen:     10 * us,
		NumMinislots:    10,
		FrameID:         map[model.ActID]int{},
	}
	if _, _, err := sched.Build(sys, cfg, sched.DefaultOptions()); err == nil {
		t.Fatal("scheduling without sender slot succeeded")
	}
}
