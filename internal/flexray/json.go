package flexray

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/units"
)

// The JSON form of a configuration references DYN messages by name so
// the files survive regeneration of the system description and are
// reviewable by humans.

type jsonConfig struct {
	StaticSlotUs   float64        `json:"static_slot_us"`
	NumStaticSlots int            `json:"num_static_slots"`
	SlotOwners     []int          `json:"slot_owners"`
	MinislotUs     float64        `json:"minislot_us"`
	NumMinislots   int            `json:"num_minislots"`
	FrameIDs       map[string]int `json:"frame_ids"`
	Policy         string         `json:"latest_tx_policy"`
}

// WriteJSON serialises the configuration for the given system.
func (c *Config) WriteJSON(w io.Writer, sys *model.System) error {
	jc := jsonConfig{
		StaticSlotUs:   c.StaticSlotLen.Us(),
		NumStaticSlots: c.NumStaticSlots,
		MinislotUs:     c.MinislotLen.Us(),
		NumMinislots:   c.NumMinislots,
		FrameIDs:       map[string]int{},
		Policy:         c.Policy.String(),
	}
	for _, o := range c.StaticSlotOwner {
		jc.SlotOwners = append(jc.SlotOwners, int(o))
	}
	for m, fid := range c.FrameID {
		jc.FrameIDs[sys.App.Act(m).Name] = fid
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jc)
}

// ReadJSON parses a configuration and resolves message names against
// the system.
func ReadJSON(r io.Reader, sys *model.System) (*Config, error) {
	var jc jsonConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return nil, fmt.Errorf("flexray: decoding config: %w", err)
	}
	c := &Config{
		StaticSlotLen:  units.Microseconds(jc.StaticSlotUs),
		NumStaticSlots: jc.NumStaticSlots,
		MinislotLen:    units.Microseconds(jc.MinislotUs),
		NumMinislots:   jc.NumMinislots,
		FrameID:        map[model.ActID]int{},
	}
	switch jc.Policy {
	case "per-frame", "":
		c.Policy = LatestTxPerFrame
	case "per-node":
		c.Policy = LatestTxPerNode
	default:
		return nil, fmt.Errorf("flexray: unknown latest_tx_policy %q", jc.Policy)
	}
	for _, o := range jc.SlotOwners {
		c.StaticSlotOwner = append(c.StaticSlotOwner, model.NodeID(o))
	}
	byName := map[string]model.ActID{}
	for i := range sys.App.Acts {
		byName[sys.App.Acts[i].Name] = sys.App.Acts[i].ID
	}
	for name, fid := range jc.FrameIDs {
		id, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("flexray: config references unknown message %q", name)
		}
		c.FrameID[id] = fid
	}
	return c, nil
}
