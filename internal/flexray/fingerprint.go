package flexray

import (
	"hash/fnv"
	"sort"

	"repro/internal/model"
)

// Fingerprint returns a collision-resistant 128-bit digest of the
// configuration, identical for semantically identical configurations
// (the FrameID map is folded in sorted order). The campaign engine uses
// it as the key of its bounded evaluation cache.
func (c *Config) Fingerprint() [16]byte {
	h := fnv.New128a()
	var buf [8]byte
	w := func(v int64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(int64(c.StaticSlotLen))
	w(int64(c.NumStaticSlots))
	for _, o := range c.StaticSlotOwner {
		w(int64(o))
	}
	w(int64(c.MinislotLen))
	w(int64(c.NumMinislots))
	w(int64(c.Policy))
	ids := make([]int, 0, len(c.FrameID))
	for m := range c.FrameID {
		ids = append(ids, int(m))
	}
	sort.Ints(ids)
	for _, m := range ids {
		w(int64(m))
		w(int64(c.FrameID[model.ActID(m)]))
	}
	var out [16]byte
	h.Sum(out[:0])
	return out
}
