// Package flexray models the FlexRay bus access configuration
// (Section 3 of the paper): the periodic communication cycle made of a
// static (ST) segment — a generalised TDMA sequence of equally sized
// slots — and a dynamic (DYN) segment — a flexible TDMA sequence of
// minislots. A Config is the object the optimisation heuristics of
// package core search for: slot size and count, slot-to-node
// assignment, DYN segment length, and FrameID assignment for DYN
// messages.
package flexray

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/units"
)

// Protocol limits from the FlexRay specification as cited by the paper
// (Section 6).
const (
	// MaxStaticSlots is gdNumberOfStaticSlots_max: at most 1023
	// static slots per cycle.
	MaxStaticSlots = 1023
	// MaxStaticSlotMacroticks is gdStaticSlot_max: a static slot is
	// at most 661 macroticks long.
	MaxStaticSlotMacroticks = 661
	// MaxMinislots is the most minislots a dynamic segment may have
	// (7994).
	MaxMinislots = 7994
	// PayloadStepBits: frame payload grows in 2-byte increments,
	// i.e. the static slot length is explored in steps of 20 gdBit
	// (Fig. 6 line 4).
	PayloadStepBits = 20
)

// MaxCycle is the maximum bus cycle length: the paper's BBC requires
// gdCycle < 16000 µs (Fig. 5 line 7).
const MaxCycle = 16 * units.Millisecond

// Params are the physical-layer constants a design is built against.
// They scale durations but do not affect any algorithm.
type Params struct {
	// GdBit is the time to transmit one bit (100 ns at 10 Mbit/s,
	// FlexRay's nominal rate).
	GdBit units.Duration
	// Macrotick is the network-wide time granule; slot lengths are
	// multiples of it.
	Macrotick units.Duration
}

// DefaultParams is a 10 Mbit/s channel with a 1 µs macrotick.
func DefaultParams() Params {
	return Params{GdBit: 100 * units.Nanosecond, Macrotick: units.Microsecond}
}

// BitTime converts a payload size in bits to bus time (Eq. 1).
func (p Params) BitTime(bits int) units.Duration {
	return units.Duration(bits) * p.GdBit
}

// SlotStep is the granularity with which the static slot length is
// explored (20 gdBit, Fig. 6 line 4).
func (p Params) SlotStep() units.Duration {
	return units.Duration(PayloadStepBits) * p.GdBit
}

// MaxStaticSlotLen is gdStaticSlot_max expressed in time.
func (p Params) MaxStaticSlotLen() units.Duration {
	return units.Duration(MaxStaticSlotMacroticks) * p.Macrotick
}

// LatestTxPolicy selects how "does this frame still fit in the DYN
// segment?" is decided at the start of a dynamic slot.
type LatestTxPolicy uint8

const (
	// LatestTxPerFrame transmits a frame of size s minislots
	// starting at minislot counter i iff i+s-1 <= NumMinislots. This
	// is the behaviour of the paper's Fig. 4 example (see DESIGN.md
	// §3) and the package default.
	LatestTxPerFrame LatestTxPolicy = iota
	// LatestTxPerNode transmits iff i <= pLatestTx(node), where
	// pLatestTx is precomputed from the *largest* DYN frame the node
	// sends (the FlexRay specification's per-node parameter,
	// Section 3).
	LatestTxPerNode
)

func (p LatestTxPolicy) String() string {
	switch p {
	case LatestTxPerFrame:
		return "per-frame"
	case LatestTxPerNode:
		return "per-node"
	default:
		return fmt.Sprintf("LatestTxPolicy(%d)", uint8(p))
	}
}

// Config is a complete bus access configuration. The six subproblems of
// Section 6 map onto its fields: (1) StaticSlotLen, (2) NumStaticSlots,
// (3) StaticSlotOwner, (4) NumMinislots (with MinislotLen), (5)+(6)
// FrameID (assigning a FrameID to a message implicitly assigns the
// corresponding DYN slot to its sender node).
type Config struct {
	// StaticSlotLen is gdStaticSlot, the constant length of every
	// static slot.
	StaticSlotLen units.Duration
	// NumStaticSlots is gdNumberOfStaticSlots.
	NumStaticSlots int
	// StaticSlotOwner[i] is the node owning static slot i+1 (slots
	// are numbered from 1 on the bus); -1 marks an unassigned slot.
	StaticSlotOwner []model.NodeID
	// MinislotLen is gdMinislot.
	MinislotLen units.Duration
	// NumMinislots is gNumberOfMinislots, fixing the DYN segment
	// length to NumMinislots*MinislotLen.
	NumMinislots int
	// FrameID assigns each DYN message its dynamic frame identifier
	// (1-based). Messages may share a FrameID only when sent by the
	// same node; the slot then multiplexes them by priority.
	FrameID map[model.ActID]int
	// Policy selects the latest-transmission-start rule.
	Policy LatestTxPolicy
}

// STBus is the static segment length (STbus in the paper).
func (c *Config) STBus() units.Duration {
	return units.Duration(c.NumStaticSlots) * c.StaticSlotLen
}

// DYNBus is the dynamic segment length (DYNbus in the paper).
func (c *Config) DYNBus() units.Duration {
	return units.Duration(c.NumMinislots) * c.MinislotLen
}

// Cycle is gdCycle, the bus period.
func (c *Config) Cycle() units.Duration {
	return c.STBus() + c.DYNBus()
}

// StaticSlotStart returns the absolute start time of static slot `slot`
// (1-based) in bus cycle `cycle` (0-based).
func (c *Config) StaticSlotStart(cycle int64, slot int) units.Time {
	return units.Time(int64(c.Cycle())*cycle + int64(c.StaticSlotLen)*int64(slot-1))
}

// StaticSlotEnd returns the end of the slot; ST frames are considered
// delivered at this instant (DESIGN.md §3).
func (c *Config) StaticSlotEnd(cycle int64, slot int) units.Time {
	return c.StaticSlotStart(cycle, slot).Add(c.StaticSlotLen)
}

// DYNStart returns the absolute start of the dynamic segment of bus
// cycle `cycle`.
func (c *Config) DYNStart(cycle int64) units.Time {
	return units.Time(int64(c.Cycle())*cycle + int64(c.STBus()))
}

// CycleStart returns the absolute start of bus cycle `cycle`.
func (c *Config) CycleStart(cycle int64) units.Time {
	return units.Time(int64(c.Cycle()) * cycle)
}

// CycleOf returns the index of the bus cycle containing instant t.
func (c *Config) CycleOf(t units.Time) int64 {
	cy := c.Cycle()
	if t < 0 {
		return (int64(t) - int64(cy) + 1) / int64(cy)
	}
	return int64(t) / int64(cy)
}

// SizeInMinislots converts a communication time to a whole number of
// minislots (a DYN slot carrying a frame stretches to the number of
// minislots needed to transmit it, Section 3).
func (c *Config) SizeInMinislots(comm units.Duration) int {
	return int(units.CeilDiv(int64(comm), int64(c.MinislotLen)))
}

// SlotsOfNode returns the static slot numbers (1-based, ascending)
// owned by node n.
func (c *Config) SlotsOfNode(n model.NodeID) []int {
	var out []int
	for i, o := range c.StaticSlotOwner {
		if o == n {
			out = append(out, i+1)
		}
	}
	return out
}

// DYNNodeOf returns the node owning dynamic slot fid according to the
// FrameID assignment, or -1 if the slot is unused.
func (c *Config) DYNNodeOf(app *model.Application, fid int) model.NodeID {
	for m, f := range c.FrameID {
		if f == fid {
			return app.Act(m).Node
		}
	}
	return -1
}

// MaxFrameID returns the largest assigned FrameID (0 when no DYN
// messages exist).
func (c *Config) MaxFrameID() int {
	max := 0
	for _, f := range c.FrameID {
		if f > max {
			max = f
		}
	}
	return max
}

// PLatestTx returns the per-node latest transmission start (in minislot
// counter units, 1-based): the largest minislot counter value at which
// the node may still begin transmitting, derived from the largest DYN
// frame it sends. Only meaningful under LatestTxPerNode.
func (c *Config) PLatestTx(app *model.Application, n model.NodeID) int {
	largest := 0
	for m := range c.FrameID {
		a := app.Act(m)
		if a.Node != n {
			continue
		}
		if s := c.SizeInMinislots(a.C); s > largest {
			largest = s
		}
	}
	if largest == 0 {
		return c.NumMinislots
	}
	return c.NumMinislots - largest + 1
}

// FitsAt reports whether message m (of size sizeMS minislots, sent by
// node n) may start transmitting when the minislot counter shows ms
// (1-based), under the configured policy.
func (c *Config) FitsAt(app *model.Application, m model.ActID, ms int) bool {
	a := app.Act(m)
	switch c.Policy {
	case LatestTxPerNode:
		return ms <= c.PLatestTx(app, a.Node)
	default:
		return ms+c.SizeInMinislots(a.C)-1 <= c.NumMinislots
	}
}

// Clone returns a deep copy of the configuration; optimisers mutate
// clones while keeping the incumbent intact.
func (c *Config) Clone() *Config {
	cl := *c
	cl.StaticSlotOwner = append([]model.NodeID(nil), c.StaticSlotOwner...)
	cl.FrameID = make(map[model.ActID]int, len(c.FrameID))
	for k, v := range c.FrameID {
		cl.FrameID[k] = v
	}
	return &cl
}

// Validate checks the configuration against the protocol limits and
// against the application: every ST-sending node owns a slot, every DYN
// message has a FrameID that is reachable within the dynamic segment,
// and FrameID sharing never crosses nodes.
func (c *Config) Validate(p Params, sys *model.System) error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if c.NumStaticSlots < 0 || c.NumStaticSlots > MaxStaticSlots {
		add("gdNumberOfStaticSlots %d outside [0,%d]", c.NumStaticSlots, MaxStaticSlots)
	}
	if c.NumStaticSlots > 0 && c.StaticSlotLen <= 0 {
		add("non-positive gdStaticSlot %v", c.StaticSlotLen)
	}
	if c.StaticSlotLen > p.MaxStaticSlotLen() {
		add("gdStaticSlot %v exceeds %d macroticks", c.StaticSlotLen, MaxStaticSlotMacroticks)
	}
	if c.NumMinislots < 0 || c.NumMinislots > MaxMinislots {
		add("gNumberOfMinislots %d outside [0,%d]", c.NumMinislots, MaxMinislots)
	}
	if c.NumMinislots > 0 && c.MinislotLen <= 0 {
		add("non-positive gdMinislot %v", c.MinislotLen)
	}
	if cy := c.Cycle(); cy >= MaxCycle {
		add("gdCycle %v not below the 16 ms protocol limit", cy)
	}
	if len(c.StaticSlotOwner) != c.NumStaticSlots {
		add("StaticSlotOwner has %d entries for %d slots", len(c.StaticSlotOwner), c.NumStaticSlots)
	}
	for i, o := range c.StaticSlotOwner {
		if int(o) >= sys.Platform.NumNodes || int(o) < -1 {
			add("static slot %d: bad owner %d", i+1, o)
		}
	}

	// Every node sending ST messages needs at least one static slot.
	owned := map[model.NodeID]bool{}
	for _, o := range c.StaticSlotOwner {
		if o >= 0 {
			owned[o] = true
		}
	}
	for _, n := range sys.App.STSenderNodes() {
		if !owned[n] {
			add("node %s sends ST messages but owns no static slot", sys.Platform.NodeName(n))
		}
	}

	// Largest ST frame must fit a static slot.
	maxST := sys.App.MaxC(func(a *model.Activity) bool {
		return a.IsMessage() && a.Class == model.ST
	})
	if maxST > c.StaticSlotLen && c.NumStaticSlots > 0 {
		add("largest ST message (%v) exceeds gdStaticSlot (%v)", maxST, c.StaticSlotLen)
	}

	// FrameID assignment: total, positive, node-consistent,
	// transmittable.
	fidNode := map[int]model.NodeID{}
	for _, m := range sys.App.Messages(int(model.DYN)) {
		fid, ok := c.FrameID[m]
		a := sys.App.Act(m)
		if !ok {
			add("DYN message %q has no FrameID", a.Name)
			continue
		}
		if fid < 1 {
			add("DYN message %q: FrameID %d < 1", a.Name, fid)
			continue
		}
		if prev, ok := fidNode[fid]; ok && prev != a.Node {
			add("FrameID %d shared across nodes %s and %s",
				fid, sys.Platform.NodeName(prev), sys.Platform.NodeName(a.Node))
		}
		fidNode[fid] = a.Node
		if c.NumMinislots > 0 {
			s := c.SizeInMinislots(a.C)
			if fid+s-1 > c.NumMinislots {
				add("DYN message %q (FrameID %d, %d minislots) can never fit the %d-minislot segment",
					a.Name, fid, s, c.NumMinislots)
			}
		}
	}
	for m := range c.FrameID {
		a := sys.App.Act(m)
		if !a.IsMessage() || a.Class != model.DYN {
			add("FrameID assigned to non-DYN activity %q", a.Name)
		}
	}

	return errors.Join(errs...)
}

// String summarises the configuration for logs and reports.
func (c *Config) String() string {
	fids := make([]int, 0, len(c.FrameID))
	for _, f := range c.FrameID {
		fids = append(fids, f)
	}
	sort.Ints(fids)
	return fmt.Sprintf("flexray{ST: %d×%v=%v, DYN: %d×%v=%v, cycle %v, %d FrameIDs, %s}",
		c.NumStaticSlots, c.StaticSlotLen, c.STBus(),
		c.NumMinislots, c.MinislotLen, c.DYNBus(),
		c.Cycle(), len(fids), c.Policy)
}
