package flexray

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/units"
)

const us = units.Microsecond

// fixture: two nodes, one ST message N0->N1, two DYN messages (one per
// node).
func fixture(t testing.TB) (*model.System, *Config) {
	t.Helper()
	b := model.NewBuilder("cfg-fixture", 2)
	g := b.Graph("g", 10*units.Millisecond, 10*units.Millisecond)
	t1 := b.Task(g, "t1", 0, 100*us, model.SCS)
	t2 := b.Task(g, "t2", 1, 100*us, model.SCS)
	e1 := b.PrioTask(g, "e1", 0, 100*us, 2)
	e2 := b.PrioTask(g, "e2", 1, 100*us, 1)
	e3 := b.PrioTask(g, "e3", 0, 100*us, 1)
	mst := b.Message("m_st", model.ST, 60*us, t1, t2, 0)
	d1 := b.Message("d1", model.DYN, 30*us, e1, e2, 2)
	d2 := b.Message("d2", model.DYN, 45*us, e2, e3, 1)
	sys := b.MustBuild()
	_ = mst
	cfg := &Config{
		StaticSlotLen:   100 * us,
		NumStaticSlots:  2,
		StaticSlotOwner: []model.NodeID{0, 1},
		MinislotLen:     10 * us,
		NumMinislots:    20,
		FrameID:         map[model.ActID]int{d1: 1, d2: 2},
		Policy:          LatestTxPerFrame,
	}
	return sys, cfg
}

func TestDerivedLengths(t *testing.T) {
	_, cfg := fixture(t)
	if got := cfg.STBus(); got != 200*us {
		t.Errorf("STBus = %v, want 200µs", got)
	}
	if got := cfg.DYNBus(); got != 200*us {
		t.Errorf("DYNBus = %v, want 200µs", got)
	}
	if got := cfg.Cycle(); got != 400*us {
		t.Errorf("Cycle = %v, want 400µs", got)
	}
}

func TestSlotTimes(t *testing.T) {
	_, cfg := fixture(t)
	if got := cfg.StaticSlotStart(0, 1); got != 0 {
		t.Errorf("slot 1 cycle 0 start = %v", got)
	}
	if got := cfg.StaticSlotStart(1, 2); got != units.Time(500*us) {
		t.Errorf("slot 2 cycle 1 start = %v, want 500µs", got)
	}
	if got := cfg.StaticSlotEnd(0, 2); got != units.Time(200*us) {
		t.Errorf("slot 2 cycle 0 end = %v, want 200µs", got)
	}
	if got := cfg.DYNStart(1); got != units.Time(600*us) {
		t.Errorf("DYN start cycle 1 = %v, want 600µs", got)
	}
	if got := cfg.CycleStart(3); got != units.Time(1200*us) {
		t.Errorf("cycle 3 start = %v", got)
	}
}

func TestCycleOf(t *testing.T) {
	_, cfg := fixture(t)
	cases := []struct {
		t    units.Time
		want int64
	}{
		{0, 0},
		{units.Time(399 * us), 0},
		{units.Time(400 * us), 1},
		{units.Time(401 * us), 1},
		{units.Time(-1), -1},
	}
	for _, c := range cases {
		if got := cfg.CycleOf(c.t); got != c.want {
			t.Errorf("CycleOf(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSizeInMinislots(t *testing.T) {
	_, cfg := fixture(t)
	cases := []struct {
		c    units.Duration
		want int
	}{
		{1, 1},
		{10 * us, 1},
		{11 * us, 2},
		{30 * us, 3},
		{45 * us, 5},
	}
	for _, c := range cases {
		if got := cfg.SizeInMinislots(c.c); got != c.want {
			t.Errorf("SizeInMinislots(%v) = %d, want %d", c.c, got, c.want)
		}
	}
}

func TestSlotsOfNode(t *testing.T) {
	_, cfg := fixture(t)
	if got := cfg.SlotsOfNode(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("SlotsOfNode(0) = %v", got)
	}
	cfg.StaticSlotOwner = []model.NodeID{1, 1}
	if got := cfg.SlotsOfNode(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("SlotsOfNode(1) = %v", got)
	}
	if got := cfg.SlotsOfNode(0); len(got) != 0 {
		t.Errorf("SlotsOfNode(0) after reassignment = %v", got)
	}
}

func TestPLatestTxPerNode(t *testing.T) {
	sys, cfg := fixture(t)
	// Node 1 sends d2 (45µs -> 5 minislots): pLatestTx = 20-5+1 = 16.
	if got := cfg.PLatestTx(&sys.App, 1); got != 16 {
		t.Errorf("pLatestTx(N1) = %d, want 16", got)
	}
	// Node 0 sends d1 (3 minislots): 20-3+1 = 18.
	if got := cfg.PLatestTx(&sys.App, 0); got != 18 {
		t.Errorf("pLatestTx(N0) = %d, want 18", got)
	}
}

func TestFitsAtPerFrame(t *testing.T) {
	sys, cfg := fixture(t)
	var d2 model.ActID
	for m := range cfg.FrameID {
		if sys.App.Act(m).Name == "d2" {
			d2 = m
		}
	}
	// d2 is 5 minislots: fits at counter 16 (16+5-1=20), not at 17.
	if !cfg.FitsAt(&sys.App, d2, 16) {
		t.Error("d2 should fit at minislot 16")
	}
	if cfg.FitsAt(&sys.App, d2, 17) {
		t.Error("d2 should not fit at minislot 17")
	}
}

func TestFitsAtPerNode(t *testing.T) {
	sys, cfg := fixture(t)
	cfg.Policy = LatestTxPerNode
	var d1 model.ActID
	for m := range cfg.FrameID {
		if sys.App.Act(m).Name == "d1" {
			d1 = m
		}
	}
	// Per-node: node 0's pLatestTx is 18 regardless of d1's own size.
	if !cfg.FitsAt(&sys.App, d1, 18) {
		t.Error("d1 should fit at 18 under per-node policy")
	}
	if cfg.FitsAt(&sys.App, d1, 19) {
		t.Error("d1 should not fit at 19 under per-node policy")
	}
}

func TestValidateAcceptsFixture(t *testing.T) {
	sys, cfg := fixture(t)
	if err := cfg.Validate(DefaultParams(), sys); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func breakConfig(t *testing.T, want string, mutate func(*model.System, *Config)) {
	t.Helper()
	sys, cfg := fixture(t)
	mutate(sys, cfg)
	err := cfg.Validate(DefaultParams(), sys)
	if err == nil {
		t.Fatalf("mutation %q accepted", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestValidateRejectsTooManySlots(t *testing.T) {
	breakConfig(t, "gdNumberOfStaticSlots", func(_ *model.System, c *Config) {
		c.NumStaticSlots = MaxStaticSlots + 1
	})
}

func TestValidateRejectsOversizedSlot(t *testing.T) {
	breakConfig(t, "macroticks", func(_ *model.System, c *Config) {
		c.StaticSlotLen = 662 * us
	})
}

func TestValidateRejectsTooManyMinislots(t *testing.T) {
	breakConfig(t, "gNumberOfMinislots", func(_ *model.System, c *Config) {
		c.NumMinislots = MaxMinislots + 1
	})
}

func TestValidateRejectsLongCycle(t *testing.T) {
	breakConfig(t, "16 ms", func(_ *model.System, c *Config) {
		c.MinislotLen = units.Millisecond
		c.NumMinislots = 16
	})
}

func TestValidateRejectsOwnerMismatch(t *testing.T) {
	breakConfig(t, "entries for", func(_ *model.System, c *Config) {
		c.StaticSlotOwner = c.StaticSlotOwner[:1]
	})
}

func TestValidateRejectsSlotlessSTSender(t *testing.T) {
	breakConfig(t, "owns no static slot", func(_ *model.System, c *Config) {
		c.StaticSlotOwner = []model.NodeID{1, 1}
	})
}

func TestValidateRejectsOversizedSTMessage(t *testing.T) {
	breakConfig(t, "exceeds gdStaticSlot", func(_ *model.System, c *Config) {
		c.StaticSlotLen = 50 * us // m_st is 60µs
	})
}

func TestValidateRejectsMissingFrameID(t *testing.T) {
	breakConfig(t, "no FrameID", func(sys *model.System, c *Config) {
		for m := range c.FrameID {
			delete(c.FrameID, m)
			break
		}
	})
}

func TestValidateRejectsCrossNodeFrameIDSharing(t *testing.T) {
	breakConfig(t, "shared across nodes", func(sys *model.System, c *Config) {
		for m := range c.FrameID {
			c.FrameID[m] = 1 // d1 (node 0) and d2 (node 1) collide
		}
	})
}

func TestValidateRejectsUnreachableFrameID(t *testing.T) {
	breakConfig(t, "can never fit", func(sys *model.System, c *Config) {
		for m := range c.FrameID {
			if sys.App.Act(m).Name == "d2" {
				c.FrameID[m] = 17 // 17+5-1 = 21 > 20 minislots
			}
		}
	})
}

func TestCloneIndependence(t *testing.T) {
	_, cfg := fixture(t)
	cl := cfg.Clone()
	cl.StaticSlotOwner[0] = 1
	for m := range cl.FrameID {
		cl.FrameID[m] = 9
	}
	if cfg.StaticSlotOwner[0] == 1 {
		t.Error("Clone shares StaticSlotOwner")
	}
	for _, f := range cfg.FrameID {
		if f == 9 {
			t.Error("Clone shares FrameID map")
		}
	}
}

func TestParamsHelpers(t *testing.T) {
	p := DefaultParams()
	if got := p.BitTime(20); got != 2*us {
		t.Errorf("BitTime(20) = %v, want 2µs at 10 Mbit/s", got)
	}
	if got := p.SlotStep(); got != 2*us {
		t.Errorf("SlotStep = %v, want 2µs (20 gdBit)", got)
	}
	if got := p.MaxStaticSlotLen(); got != 661*us {
		t.Errorf("MaxStaticSlotLen = %v, want 661µs", got)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	sys, cfg := fixture(t)
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf, sys); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()), sys)
	if err != nil {
		t.Fatal(err)
	}
	if back.StaticSlotLen != cfg.StaticSlotLen || back.NumStaticSlots != cfg.NumStaticSlots ||
		back.MinislotLen != cfg.MinislotLen || back.NumMinislots != cfg.NumMinislots ||
		back.Policy != cfg.Policy {
		t.Errorf("scalar fields changed: %v vs %v", back, cfg)
	}
	for m, f := range cfg.FrameID {
		if back.FrameID[m] != f {
			t.Errorf("FrameID of %d changed: %d vs %d", m, back.FrameID[m], f)
		}
	}
	if len(back.StaticSlotOwner) != len(cfg.StaticSlotOwner) {
		t.Errorf("owners changed")
	}
}

func TestConfigJSONUnknownMessage(t *testing.T) {
	sys, _ := fixture(t)
	in := `{"static_slot_us":100,"num_static_slots":1,"slot_owners":[0],
	  "minislot_us":10,"num_minislots":10,"frame_ids":{"ghost":1},"latest_tx_policy":"per-frame"}`
	if _, err := ReadJSON(strings.NewReader(in), sys); err == nil {
		t.Fatal("unknown message name accepted")
	}
}

func TestMaxFrameID(t *testing.T) {
	_, cfg := fixture(t)
	if got := cfg.MaxFrameID(); got != 2 {
		t.Errorf("MaxFrameID = %d, want 2", got)
	}
	cfg.FrameID = map[model.ActID]int{}
	if got := cfg.MaxFrameID(); got != 0 {
		t.Errorf("MaxFrameID(empty) = %d, want 0", got)
	}
}

func TestDYNNodeOf(t *testing.T) {
	sys, cfg := fixture(t)
	if got := cfg.DYNNodeOf(&sys.App, 1); got != 0 {
		t.Errorf("DYNNodeOf(1) = %d, want 0", got)
	}
	if got := cfg.DYNNodeOf(&sys.App, 9); got != -1 {
		t.Errorf("DYNNodeOf(unused) = %d, want -1", got)
	}
}

func TestStringIncludesGeometry(t *testing.T) {
	_, cfg := fixture(t)
	s := cfg.String()
	for _, want := range []string{"2×100µs", "20×10µs", "per-frame"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
