package flexopt_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	flexopt "repro"
)

// buildDemo assembles the README's quickstart system through the public
// facade.
func buildDemo(t testing.TB) *flexopt.System {
	t.Helper()
	b := flexopt.NewBuilder("facade-demo", 3)
	g := b.Graph("control", 10*flexopt.Millisecond, 8*flexopt.Millisecond)
	sense := b.Task(g, "sense", 0, 400*flexopt.Microsecond, flexopt.SCS)
	ctl := b.Task(g, "ctl", 1, 900*flexopt.Microsecond, flexopt.SCS)
	act := b.Task(g, "act", 2, 350*flexopt.Microsecond, flexopt.SCS)
	b.Message("m_meas", flexopt.ST, 120*flexopt.Microsecond, sense, ctl, 0)
	b.Message("m_cmd", flexopt.ST, 90*flexopt.Microsecond, ctl, act, 0)
	d := b.Graph("diag", 20*flexopt.Millisecond, 20*flexopt.Millisecond)
	probe := b.PrioTask(d, "probe", 2, 500*flexopt.Microsecond, 3)
	classify := b.PrioTask(d, "classify", 1, 700*flexopt.Microsecond, 2)
	b.Message("m_probe", flexopt.DYN, 200*flexopt.Microsecond, probe, classify, 5)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestPublicAPIEndToEnd drives the whole pipeline through the facade:
// build, optimise with every algorithm, schedule, simulate, serialise.
func TestPublicAPIEndToEnd(t *testing.T) {
	sys := buildDemo(t)
	opts := flexopt.DefaultOptions()

	for _, alg := range []struct {
		name string
		run  func(*flexopt.System, flexopt.Options) (*flexopt.Result, error)
	}{
		{"BBC", flexopt.BBC},
		{"OBC-CF", flexopt.OBCCF},
		{"OBC-EE", flexopt.OBCEE},
		{"SA", flexopt.SA},
	} {
		res, err := alg.run(sys, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if !res.Schedulable {
			t.Errorf("%s: demo system should be schedulable (cost %.1f)", alg.name, res.Cost)
		}
		if err := res.Config.Validate(flexopt.DefaultBusParams(), sys); err != nil {
			t.Errorf("%s: invalid config: %v", alg.name, err)
		}

		table, ana, err := flexopt.BuildSchedule(sys, res.Config, flexopt.DefaultSchedOptions())
		if err != nil {
			t.Fatalf("%s: schedule: %v", alg.name, err)
		}
		simRes, err := flexopt.Simulate(sys, res.Config, table, flexopt.DefaultSimOptions())
		if err != nil {
			t.Fatalf("%s: simulate: %v", alg.name, err)
		}
		if simRes.DeadlineMisses != 0 {
			t.Errorf("%s: %d observed misses on a schedulable config", alg.name, simRes.DeadlineMisses)
		}
		for id, r := range simRes.MaxResponse {
			if bound := ana.R[id]; r > bound {
				t.Errorf("%s: simulated %v above analysed %v for activity %d", alg.name, r, bound, id)
			}
		}
	}
}

func TestPublicAPISystemJSON(t *testing.T) {
	sys := buildDemo(t)
	var buf bytes.Buffer
	if err := sys.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := flexopt.ReadSystem(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.App.Acts) != len(sys.App.Acts) {
		t.Errorf("round trip changed activity count: %d vs %d",
			len(back.App.Acts), len(sys.App.Acts))
	}
}

func TestPublicAPIGenerator(t *testing.T) {
	sys, err := flexopt.Generate(flexopt.DefaultGenParams(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Platform.NumNodes != 3 {
		t.Errorf("nodes = %d", sys.Platform.NumNodes)
	}
	if len(sys.App.Tasks(-1)) != 30 {
		t.Errorf("tasks = %d, want 30", len(sys.App.Tasks(-1)))
	}
}

func TestPublicAPICruise(t *testing.T) {
	sys, err := flexopt.CruiseController()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.App.Tasks(-1)); got != 54 {
		t.Errorf("cruise tasks = %d, want 54", got)
	}
}

func TestPublicAPIFrameIDs(t *testing.T) {
	sys := buildDemo(t)
	fids, err := flexopt.AssignFrameIDs(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(fids) != 1 {
		t.Fatalf("FrameIDs = %v, want exactly the one DYN message", fids)
	}
	for _, f := range fids {
		if f != 1 {
			t.Errorf("FrameID = %d, want 1", f)
		}
	}
}

func TestDurationHelpers(t *testing.T) {
	if flexopt.Microseconds(2285.4) != 2285400*flexopt.Nanosecond {
		t.Error("Microseconds conversion wrong")
	}
	if flexopt.Milliseconds(16) != 16*flexopt.Millisecond {
		t.Error("Milliseconds conversion wrong")
	}
}

// TestPublicAPIPortfolio races the optimiser portfolio on the demo
// system through the facade and cross-checks the winner against a
// direct OBC-CF run.
func TestPublicAPIPortfolio(t *testing.T) {
	sys := buildDemo(t)
	opts := flexopt.DefaultOptions()
	pf, err := flexopt.Portfolio(context.Background(), sys, opts, flexopt.EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Runs) != len(flexopt.PortfolioAlgorithms()) {
		t.Fatalf("%d runs, want %d", len(pf.Runs), len(flexopt.PortfolioAlgorithms()))
	}
	if pf.Best == nil || !pf.Best.Schedulable {
		t.Fatalf("portfolio best = %+v, want a schedulable result", pf.Best)
	}
	cf, err := flexopt.OBCCF(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Best.Cost > cf.Cost {
		t.Errorf("portfolio best cost %v worse than plain OBC-CF %v", pf.Best.Cost, cf.Cost)
	}
}

// TestPublicAPICampaign streams a small population sweep as JSONL
// through the facade.
func TestPublicAPICampaign(t *testing.T) {
	specs := flexopt.PopulationSpecs([]int{2}, 2, 1, 2.0)
	opts := flexopt.DefaultOptions()
	opts.DYNGridCap = 16
	opts.MaxEvaluations = 150
	opts.SAIterations = 60
	var buf bytes.Buffer
	recs, err := flexopt.CampaignJSONL(context.Background(), specs, opts,
		flexopt.CampaignOptions{Workers: 2}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("%d JSONL lines, want 2", lines)
	}
	for i, r := range recs {
		if r.Index != i || r.Err != "" || r.Best == "" {
			t.Errorf("record %d malformed: %+v", i, r)
		}
	}
}

// TestPublicAPIJobs drives the async job subsystem through the facade:
// submit a campaign over builder-made (uploaded) systems, follow its
// event stream, and fetch the result.
func TestPublicAPIJobs(t *testing.T) {
	mgr, err := flexopt.NewJobManager(flexopt.NewJobMemStore(), flexopt.JobManagerOptions{
		Workers: 1,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := mgr.Close(context.Background()); err != nil {
			t.Error(err)
		}
	}()

	sys := buildDemo(t)
	var raw bytes.Buffer
	if err := sys.WriteJSON(&raw); err != nil {
		t.Fatal(err)
	}
	job, err := mgr.Submit(flexopt.JobSpec{
		Kind:       flexopt.JobCampaign,
		Algorithms: []string{"bbc", "obc-cf"},
		Tuning:     &flexopt.JobTuning{DYNGridCap: 16, MaxEvaluations: 150},
		Population: &flexopt.JobPopulation{Systems: []json.RawMessage{raw.Bytes()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != flexopt.JobQueued {
		t.Fatalf("submitted job is %s, want queued", job.Status)
	}

	_, events, cancel, err := mgr.Subscribe(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	last := -1
	for ev := range events {
		if ev.Job.Progress.Completed < last {
			t.Errorf("progress regressed: %d -> %d", last, ev.Job.Progress.Completed)
		}
		last = ev.Job.Progress.Completed
	}

	res, final, err := mgr.Result(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != flexopt.JobDone {
		t.Fatalf("final status %s (error %q), want done", final.Status, final.Error)
	}
	if len(res.Records) != 1 || res.Records[0].Name != sys.Name || res.Records[0].Best == "" {
		t.Errorf("job records %+v, want one winning record for %s", res.Records, sys.Name)
	}
}

// TestPublicAPIPerf drives the performance-regression harness through
// the facade: measure a tiny custom suite, round-trip the report, and
// gate a doctored regression with PerfCompare.
func TestPublicAPIPerf(t *testing.T) {
	suite := []*flexopt.PerfScenario{{
		Name:   "facade/spin",
		Unit:   "op",
		Serial: true,
		Setup: func() (func() error, func(), error) {
			sink := 0
			return func() error {
				for i := 0; i < 500; i++ {
					sink += i
				}
				_ = sink
				return nil
			}, nil, nil
		},
	}}
	cfg := flexopt.PerfQuickConfig()
	report, err := flexopt.PerfRun(suite, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Scenarios) != 1 || report.Scenarios[0].AllocsPerOp != 0 {
		t.Fatalf("report = %+v", report.Scenarios)
	}
	path := t.TempDir() + "/BENCH_1.json"
	report.Seq = 1
	if err := report.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	base, err := flexopt.ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if cmp := flexopt.PerfCompare(base, report, flexopt.PerfCompareOptions{}); !cmp.OK() {
		t.Errorf("report regressed against itself:\n%s", cmp.Table())
	}
	worse := *report
	worse.Scenarios = append([]flexopt.PerfScenarioResult(nil), report.Scenarios...)
	worse.Scenarios[0].AllocsPerOp += 3
	if cmp := flexopt.PerfCompare(base, &worse, flexopt.PerfCompareOptions{}); cmp.OK() {
		t.Error("injected allocation regression passed the facade gate")
	}
}
