package flexopt

import (
	"context"
	"io"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cruise"
	"repro/internal/flexray"
	"repro/internal/jobs"
	"repro/internal/lint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/perfreg"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/units"
)

// Time and duration handling (integer nanoseconds).
type (
	// Duration is a span of simulated time in nanoseconds.
	Duration = units.Duration
	// Time is an absolute instant of simulated time.
	Time = units.Time
)

// Common duration units.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
)

// Microseconds converts (possibly fractional) microseconds to a
// Duration.
func Microseconds(us float64) Duration { return units.Microseconds(us) }

// Milliseconds converts (possibly fractional) milliseconds to a
// Duration.
func Milliseconds(ms float64) Duration { return units.Milliseconds(ms) }

// Application model.
type (
	// System is an application mapped onto a platform of nodes
	// connected by one FlexRay bus.
	System = model.System
	// Builder assembles systems programmatically.
	Builder = model.Builder
	// Activity is a task or message vertex of a task graph.
	Activity = model.Activity
	// ActID identifies an activity within a system.
	ActID = model.ActID
	// NodeID identifies a processing node.
	NodeID = model.NodeID
)

// Scheduling policies and message classes.
const (
	// SCS marks static cyclic scheduled (time-triggered) tasks.
	SCS = model.SCS
	// FPS marks fixed-priority scheduled (event-triggered) tasks.
	FPS = model.FPS
	// ST marks static-segment messages.
	ST = model.ST
	// DYN marks dynamic-segment messages.
	DYN = model.DYN
)

// NewBuilder starts a new system description with the given name and
// number of nodes.
func NewBuilder(name string, numNodes int) *Builder { return model.NewBuilder(name, numNodes) }

// ReadSystem parses a system from its JSON interchange format.
func ReadSystem(r io.Reader) (*System, error) { return model.ReadJSON(r) }

// Bus configuration.
type (
	// Config is a complete FlexRay bus access configuration: the
	// object the optimisers search for.
	Config = flexray.Config
	// BusParams are physical-layer constants (gdBit, macrotick).
	BusParams = flexray.Params
	// LatestTxPolicy selects the dynamic-segment admission rule.
	LatestTxPolicy = flexray.LatestTxPolicy
)

// Latest-transmission policies.
const (
	// LatestTxPerFrame admits a dynamic frame iff it fits the
	// remaining segment (the paper's Fig. 4 semantics; default).
	LatestTxPerFrame = flexray.LatestTxPerFrame
	// LatestTxPerNode uses the specification's per-node pLatestTx.
	LatestTxPerNode = flexray.LatestTxPerNode
)

// DefaultBusParams returns a 10 Mbit/s channel with a 1 µs macrotick.
func DefaultBusParams() BusParams { return flexray.DefaultParams() }

// Optimisation.
type (
	// Options tune the optimisers; see DefaultOptions.
	Options = core.Options
	// Result is the outcome of an optimisation run.
	Result = core.Result
)

// DefaultOptions returns the options used by the paper-reproduction
// experiments.
func DefaultOptions() Options { return core.DefaultOptions() }

// BBC computes the Basic Bus Configuration (paper Fig. 5).
func BBC(sys *System, opts Options) (*Result, error) { return core.BBC(sys, opts) }

// OBCCF runs the Optimised Bus Configuration heuristic with
// curve-fitting dynamic-segment sizing (paper Fig. 6 + Fig. 8).
func OBCCF(sys *System, opts Options) (*Result, error) { return core.OBCCF(sys, opts) }

// OBCEE runs the OBC heuristic with exhaustive dynamic-segment
// exploration.
func OBCEE(sys *System, opts Options) (*Result, error) { return core.OBCEE(sys, opts) }

// SA runs the simulated-annealing baseline explorer.
func SA(sys *System, opts Options) (*Result, error) { return core.SA(sys, opts) }

// AssignFrameIDs performs the criticality-driven unique FrameID
// assignment of the paper's Fig. 5 line 1 (Eq. 4).
func AssignFrameIDs(sys *System) (map[ActID]int, error) { return core.AssignFrameIDs(sys) }

// Analysis and scheduling.
type (
	// ScheduleTable is the static schedule: SCS task start times and
	// ST message slot assignments.
	ScheduleTable = schedule.Table
	// AnalysisResult carries worst-case response times, jitters and
	// the Eq. (5) cost of one configuration.
	AnalysisResult = analysis.Result
	// SchedOptions tune the global scheduling algorithm.
	SchedOptions = sched.Options
)

// BuildSchedule runs the global scheduling algorithm (paper Fig. 2) for
// a fixed configuration and returns the schedule table plus the
// holistic analysis of the resulting system.
func BuildSchedule(sys *System, cfg *Config, opts SchedOptions) (*ScheduleTable, *AnalysisResult, error) {
	return sched.Build(sys, cfg, opts)
}

// EvalSession is a reusable evaluation pipeline for one system: a
// resettable holistic analyzer plus a geometry-keyed schedule-table
// memo. Evaluating candidate configurations through one session is
// bit-identical to BuildSchedule but avoids rebuilding the
// system-dependent analysis state — and, for candidates sharing a slot
// geometry, the schedule table — on every call. Sessions are what the
// optimisers and the campaign engine workers use internally; create
// one directly when driving many analyses of the same system yourself.
// Cache invalidation works from value snapshots, so mutating a Config
// between Eval calls (tweak-and-re-evaluate loops) is fine; a session
// is not safe for concurrent use.
type EvalSession = core.Session

// NewEvalSession builds an evaluation session for one system.
func NewEvalSession(sys *System, opts SchedOptions) *EvalSession {
	return core.NewSession(sys, opts)
}

// DefaultSchedOptions returns first-fit placement with default
// analysis.
func DefaultSchedOptions() SchedOptions { return sched.DefaultOptions() }

// Simulation.
type (
	// SimOptions tune the discrete-event simulation.
	SimOptions = sim.Options
	// SimResult aggregates observed response times and the bus
	// trace.
	SimResult = sim.Result
	// TraceEvent is one bus-level occurrence of the trace.
	TraceEvent = sim.TraceEvent
)

// DefaultSimOptions simulates one hyper-period with a generous drain.
func DefaultSimOptions() SimOptions { return sim.DefaultOptions() }

// Simulate runs the discrete-event simulator for a configured system.
func Simulate(sys *System, cfg *Config, table *ScheduleTable, opts SimOptions) (*SimResult, error) {
	s, err := sim.New(sys, cfg, table, opts)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Workload generation.
type GenParams = synth.Params

// DefaultGenParams returns the paper's Section 7 population parameters
// for the given node count and seed.
func DefaultGenParams(nodes int, seed int64) GenParams { return synth.DefaultParams(nodes, seed) }

// Generate builds one random system from the Section 7 population.
func Generate(p GenParams) (*System, error) { return synth.Generate(p) }

// CruiseController returns the paper's real-life case study: 54 tasks
// and 26 messages in 4 task graphs over 5 nodes.
func CruiseController() (*System, error) { return cruise.System() }

// Concurrent campaign engine.
type (
	// EngineOptions tune the worker-pool evaluation engine; the
	// zero value selects GOMAXPROCS workers and the default cache.
	EngineOptions = campaign.EngineOptions
	// EngineStats report evaluations and cache traffic of one
	// engine.
	EngineStats = campaign.EngineStats
	// AlgoRun is the per-algorithm telemetry of a portfolio or
	// campaign run.
	AlgoRun = campaign.AlgoRun
	// PortfolioResult is the outcome of racing the optimiser
	// portfolio on one system.
	PortfolioResult = campaign.PortfolioResult
	// CampaignOptions tune a population sweep.
	CampaignOptions = campaign.Options
	// CampaignRecord is the streamed result of one system of a
	// campaign.
	CampaignRecord = campaign.Record
)

// PortfolioAlgorithms returns the canonical optimiser portfolio
// ("BBC", "OBC-CF", "OBC-EE", "SA").
func PortfolioAlgorithms() []string {
	return append([]string(nil), campaign.Algorithms...)
}

// Portfolio races the requested optimisers (default: the full
// portfolio) concurrently on one system over a shared caching
// evaluation engine and returns the best result plus per-algorithm
// telemetry. Results are identical for any worker count; cancelling
// ctx aborts the race.
func Portfolio(ctx context.Context, sys *System, opts Options, eng EngineOptions, algorithms ...string) (*PortfolioResult, error) {
	return campaign.Portfolio(ctx, sys, opts, eng, algorithms...)
}

// Campaign shards a generated population across workers and calls emit
// with one record per system, in spec order. Records are independent
// per system, so the output is deterministic for any worker count.
func Campaign(ctx context.Context, specs []GenParams, opts Options, copts CampaignOptions, emit func(CampaignRecord) error) error {
	return campaign.Run(ctx, specs, opts, copts, emit)
}

// CampaignJSONL runs a campaign and streams every record as one JSON
// line to w, returning the records for in-process aggregation.
func CampaignJSONL(ctx context.Context, specs []GenParams, opts Options, copts CampaignOptions, w io.Writer) ([]CampaignRecord, error) {
	return campaign.WriteJSONL(ctx, specs, opts, copts, w)
}

// PopulationSpecs builds the paper's Section 7 evaluation population:
// for each node count, apps systems seeded deterministically from
// seed. A positive deadlineFactor overrides the generator default.
func PopulationSpecs(nodeCounts []int, apps int, seed int64, deadlineFactor float64) []GenParams {
	return campaign.PopulationSpecs(nodeCounts, apps, seed, deadlineFactor)
}

// CampaignSystems is Campaign over an explicit, pre-built population —
// systems constructed with Builder or parsed from JSON instead of
// generator parameters — with the same sharding, ordering and
// determinism guarantees.
func CampaignSystems(ctx context.Context, systems []*System, opts Options, copts CampaignOptions, emit func(CampaignRecord) error) error {
	return campaign.RunSystems(ctx, systems, opts, copts, emit)
}

// Asynchronous job subsystem: durable optimisation jobs, batch
// campaigns and analyze/simulate sweeps with live progress streams.
type (
	// JobManager owns a bounded priority queue and a worker pool
	// executing async jobs; it is what flexray-serve exposes under
	// /v1/jobs.
	JobManager = jobs.Manager
	// JobManagerOptions size the worker pool and the queue, and carry
	// the retention policy and compaction interval.
	JobManagerOptions = jobs.ManagerOptions
	// JobManagerStats snapshot job counts, retention/store counters
	// and engine totals.
	JobManagerStats = jobs.ManagerStats
	// JobRetention bounds the terminal jobs a manager retains; the
	// zero value keeps everything. Eviction is deterministic: oldest
	// FinishedAt first, submission order on ties.
	JobRetention = jobs.RetentionPolicy
	// JobStoreStats snapshot the durable store (size on disk,
	// compaction count, last compaction time) for operators.
	JobStoreStats = jobs.StoreStats
	// JobSpec describes one job: kind, payload, priority and knobs.
	JobSpec = jobs.Spec
	// JobPopulation is a campaign job's input set (synthesised or
	// uploaded).
	JobPopulation = jobs.Population
	// JobTuning are the serialisable optimiser knobs of a job.
	JobTuning = jobs.Tuning
	// JobKind selects what a job computes.
	JobKind = jobs.Kind
	// JobStatus is the lifecycle state of a job.
	JobStatus = jobs.Status
	// Job is the externally visible snapshot of one job.
	Job = jobs.Job
	// JobProgress carries a job's live counters.
	JobProgress = jobs.Progress
	// JobResult is the payload of a finished job.
	JobResult = jobs.Result
	// JobEvent is one element of a job's progress stream.
	JobEvent = jobs.Event
	// JobStore persists job history for crash recovery.
	JobStore = jobs.Store
)

// Job kinds and lifecycle states.
const (
	JobOptimize = jobs.KindOptimize
	JobCampaign = jobs.KindCampaign
	JobSweep    = jobs.KindSweep

	JobQueued    = jobs.StatusQueued
	JobRunning   = jobs.StatusRunning
	JobDone      = jobs.StatusDone
	JobFailed    = jobs.StatusFailed
	JobCancelled = jobs.StatusCancelled
)

// ErrJobEvicted marks a job the manager's retention policy dropped:
// it existed and finished, but its snapshot and result are gone for
// good (flexray-serve answers 410 Gone). Distinct from the not-found
// error an unknown ID yields.
var ErrJobEvicted = jobs.ErrEvicted

// NewJobManager builds a job manager over the given store (nil keeps
// jobs in memory), replaying the store's history — finished jobs come
// back with their results, interrupted ones are re-enqueued — and
// starting the worker pool. Close it to checkpoint outstanding work;
// with a compacting store (NewJobFileStore), Close also rewrites the
// log to live state so the next startup replays the snapshot, not
// history. A JobRetention policy in the options bounds terminal-job
// state; JobManager.Compact forces a store rewrite on demand.
func NewJobManager(store JobStore, opts JobManagerOptions) (*JobManager, error) {
	return jobs.NewManager(store, opts)
}

// NewJobMemStore returns an in-memory job store (no crash recovery).
func NewJobMemStore() JobStore { return jobs.NewMemStore() }

// NewJobFileStore opens (creating if needed) the append-only JSONL job
// store at path; a manager built over it resumes the recorded state.
// The store supports compaction (periodic via JobManagerOptions.
// CompactInterval, always at Close): the log is atomically rewritten
// to a snapshot of live state, so it grows with the live job set and
// the append tail, not with all history.
func NewJobFileStore(path string) (JobStore, error) { return jobs.NewFileStore(path) }

// Performance-regression harness: the curated macro-benchmark suite
// behind `flexray-bench perf` and the committed BENCH_<seq>.json
// trajectory.
type (
	// PerfScenario is one macro-benchmark of the suite.
	PerfScenario = perfreg.Scenario
	// PerfMeasureConfig tunes sampling; see PerfFullConfig and
	// PerfQuickConfig.
	PerfMeasureConfig = perfreg.MeasureConfig
	// PerfReport is one schema-versioned BENCH_<seq>.json: per-
	// scenario ns/op, allocs/op, B/op and throughput plus an
	// environment fingerprint and git SHA.
	PerfReport = perfreg.Report
	// PerfScenarioResult is one scenario's measured metrics and
	// regression thresholds.
	PerfScenarioResult = perfreg.ScenarioResult
	// PerfCompareOptions tune the regression gate (cross-machine
	// time-tolerance override, MAD noise widening).
	PerfCompareOptions = perfreg.CompareOptions
	// PerfComparison is the outcome of gating a run against a
	// baseline report.
	PerfComparison = perfreg.Comparison
)

// PerfSuite returns the curated macro-benchmark suite: evaluation
// sessions vs the fresh path, campaign-engine throughput, the async
// job pipeline, figure regeneration and the durable job store.
func PerfSuite() []*PerfScenario { return perfreg.Suite() }

// PerfFullConfig returns the baseline-quality sampling configuration;
// PerfQuickConfig the reduced CI one (noisier timings, identical
// allocation counts).
func PerfFullConfig() PerfMeasureConfig  { return perfreg.FullConfig() }
func PerfQuickConfig() PerfMeasureConfig { return perfreg.QuickConfig() }

// PerfRun measures a scenario suite with calibrated repetition and
// robust statistics (median + MAD) and assembles the report.
func PerfRun(scens []*PerfScenario, cfg PerfMeasureConfig) (*PerfReport, error) {
	return perfreg.RunSuite(scens, cfg)
}

// PerfCompare gates cur against a baseline report: per-metric
// noise-tolerant thresholds, 15% on time and exact allocation counts
// by default. Comparison.OK reports the verdict; Comparison.Table
// renders the human diff.
func PerfCompare(base, cur *PerfReport, opts PerfCompareOptions) *PerfComparison {
	return perfreg.Compare(base, cur, opts)
}

// ReadPerfReport parses a BENCH_<seq>.json, rejecting unknown schema
// versions.
func ReadPerfReport(path string) (*PerfReport, error) { return perfreg.ReadReport(path) }

// Observability: the dependency-free metrics layer behind
// flexray-serve's GET /metrics and the optimiser trace capture.
type (
	// MetricsRegistry holds named instrument families (counters,
	// gauges, histograms, scrape-time funcs) and writes them in the
	// Prometheus text exposition format; it implements http.Handler.
	MetricsRegistry = obs.Registry
	// MetricCounter is a monotonically increasing atomic counter.
	MetricCounter = obs.Counter
	// MetricGauge is an atomic instantaneous value.
	MetricGauge = obs.Gauge
	// MetricHistogram is a fixed-bucket latency/size distribution.
	MetricHistogram = obs.Histogram
	// OptTraceEvent is one explored candidate of an optimiser run:
	// iteration, cost, incumbent best, SA temperature and accept rate.
	// (TraceEvent names the simulator's bus-level trace entry.)
	OptTraceEvent = obs.TraceEvent
	// OptTraceFunc receives trace events; set Options.Trace to hook an
	// optimiser run.
	OptTraceFunc = obs.TraceFunc
	// OptTraceRing is a bounded, concurrency-safe ring of the most
	// recent trace events, with a lifetime total for drop accounting.
	OptTraceRing = obs.TraceRing
	// OptTraceSnapshot is a point-in-time copy of a ring's contents.
	OptTraceSnapshot = obs.TraceSnapshot
	// JobMetrics bridges one JobManager's telemetry into a registry;
	// see NewJobMetrics and JobManagerOptions.Metrics.
	JobMetrics = jobs.Metrics
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RegisterGoRuntimeMetrics adds the go_* runtime families (goroutines,
// heap, GC) to a registry.
func RegisterGoRuntimeMetrics(r *MetricsRegistry) { obs.RegisterGoRuntime(r) }

// NewOptTraceRing returns a trace ring retaining the most recent
// capacity events; its Record method satisfies OptTraceFunc.
func NewOptTraceRing(capacity int) *OptTraceRing { return obs.NewTraceRing(capacity) }

// NewJobMetrics registers the job-manager and store instrument
// families on r; pass the result to exactly one manager via
// JobManagerOptions.Metrics.
func NewJobMetrics(r *MetricsRegistry) *JobMetrics { return jobs.NewMetrics(r) }

// Linting: the declarative policy engine behind flexray-lint,
// POST /v1/lint and flexray-serve's -validate-jobs submission gate.
// A lint run extracts a fact model from a system (and optionally a
// configuration), evaluates every rule of the selected policy packs,
// and reports each as pass/fail/skip with an explanation — no rule is
// ever silently dropped.
type (
	// LintReport is the machine-readable result of one lint run
	// (schema "flexray-lint/v1"): the findings, their summary and the
	// worst failing severity.
	LintReport = lint.Report
	// LintFinding is one rule evaluation: rule ID, pack, severity,
	// pass/fail/skip status, subject and explanation.
	LintFinding = lint.Finding
	// LintOptions selects analysis parameters, schedule-fact
	// extraction and warning thresholds for a lint run.
	LintOptions = lint.Options
	// LintSeverity ranks findings: info < warning < error.
	LintSeverity = lint.Severity
	// LintThresholds are the headroom warning knobs (node/bus
	// utilisation, slack, jitter, slot fill, DYN cycle spill).
	LintThresholds = lint.Thresholds
	// LintMetrics bridges lint-run telemetry into a metrics registry;
	// see NewLintMetrics.
	LintMetrics = lint.Metrics
)

// Lint evaluates sys (and cfg, which may be nil) against the named
// policy packs — all of them when none are given.
func Lint(sys *System, cfg *Config, opts LintOptions, packs ...string) (*LintReport, error) {
	return lint.Run(sys, cfg, opts, packs...)
}

// DefaultLintOptions returns the defaults flexray-lint itself runs
// with: schedule facts on, documented warning thresholds.
func DefaultLintOptions() LintOptions { return lint.DefaultOptions() }

// LintPacks lists the registered policy packs in evaluation order.
func LintPacks() []string { return lint.Packs() }

// NewLintMetrics registers the flexray_lint_* instrument families on
// r.
func NewLintMetrics(r *MetricsRegistry) *LintMetrics { return lint.NewMetrics(r) }
