package flexopt

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cruise"
	"repro/internal/flexray"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/units"
)

// Time and duration handling (integer nanoseconds).
type (
	// Duration is a span of simulated time in nanoseconds.
	Duration = units.Duration
	// Time is an absolute instant of simulated time.
	Time = units.Time
)

// Common duration units.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
)

// Microseconds converts (possibly fractional) microseconds to a
// Duration.
func Microseconds(us float64) Duration { return units.Microseconds(us) }

// Milliseconds converts (possibly fractional) milliseconds to a
// Duration.
func Milliseconds(ms float64) Duration { return units.Milliseconds(ms) }

// Application model.
type (
	// System is an application mapped onto a platform of nodes
	// connected by one FlexRay bus.
	System = model.System
	// Builder assembles systems programmatically.
	Builder = model.Builder
	// Activity is a task or message vertex of a task graph.
	Activity = model.Activity
	// ActID identifies an activity within a system.
	ActID = model.ActID
	// NodeID identifies a processing node.
	NodeID = model.NodeID
)

// Scheduling policies and message classes.
const (
	// SCS marks static cyclic scheduled (time-triggered) tasks.
	SCS = model.SCS
	// FPS marks fixed-priority scheduled (event-triggered) tasks.
	FPS = model.FPS
	// ST marks static-segment messages.
	ST = model.ST
	// DYN marks dynamic-segment messages.
	DYN = model.DYN
)

// NewBuilder starts a new system description with the given name and
// number of nodes.
func NewBuilder(name string, numNodes int) *Builder { return model.NewBuilder(name, numNodes) }

// ReadSystem parses a system from its JSON interchange format.
func ReadSystem(r io.Reader) (*System, error) { return model.ReadJSON(r) }

// Bus configuration.
type (
	// Config is a complete FlexRay bus access configuration: the
	// object the optimisers search for.
	Config = flexray.Config
	// BusParams are physical-layer constants (gdBit, macrotick).
	BusParams = flexray.Params
	// LatestTxPolicy selects the dynamic-segment admission rule.
	LatestTxPolicy = flexray.LatestTxPolicy
)

// Latest-transmission policies.
const (
	// LatestTxPerFrame admits a dynamic frame iff it fits the
	// remaining segment (the paper's Fig. 4 semantics; default).
	LatestTxPerFrame = flexray.LatestTxPerFrame
	// LatestTxPerNode uses the specification's per-node pLatestTx.
	LatestTxPerNode = flexray.LatestTxPerNode
)

// DefaultBusParams returns a 10 Mbit/s channel with a 1 µs macrotick.
func DefaultBusParams() BusParams { return flexray.DefaultParams() }

// Optimisation.
type (
	// Options tune the optimisers; see DefaultOptions.
	Options = core.Options
	// Result is the outcome of an optimisation run.
	Result = core.Result
)

// DefaultOptions returns the options used by the paper-reproduction
// experiments.
func DefaultOptions() Options { return core.DefaultOptions() }

// BBC computes the Basic Bus Configuration (paper Fig. 5).
func BBC(sys *System, opts Options) (*Result, error) { return core.BBC(sys, opts) }

// OBCCF runs the Optimised Bus Configuration heuristic with
// curve-fitting dynamic-segment sizing (paper Fig. 6 + Fig. 8).
func OBCCF(sys *System, opts Options) (*Result, error) { return core.OBCCF(sys, opts) }

// OBCEE runs the OBC heuristic with exhaustive dynamic-segment
// exploration.
func OBCEE(sys *System, opts Options) (*Result, error) { return core.OBCEE(sys, opts) }

// SA runs the simulated-annealing baseline explorer.
func SA(sys *System, opts Options) (*Result, error) { return core.SA(sys, opts) }

// AssignFrameIDs performs the criticality-driven unique FrameID
// assignment of the paper's Fig. 5 line 1 (Eq. 4).
func AssignFrameIDs(sys *System) (map[ActID]int, error) { return core.AssignFrameIDs(sys) }

// Analysis and scheduling.
type (
	// ScheduleTable is the static schedule: SCS task start times and
	// ST message slot assignments.
	ScheduleTable = schedule.Table
	// AnalysisResult carries worst-case response times, jitters and
	// the Eq. (5) cost of one configuration.
	AnalysisResult = analysis.Result
	// SchedOptions tune the global scheduling algorithm.
	SchedOptions = sched.Options
)

// BuildSchedule runs the global scheduling algorithm (paper Fig. 2) for
// a fixed configuration and returns the schedule table plus the
// holistic analysis of the resulting system.
func BuildSchedule(sys *System, cfg *Config, opts SchedOptions) (*ScheduleTable, *AnalysisResult, error) {
	return sched.Build(sys, cfg, opts)
}

// DefaultSchedOptions returns first-fit placement with default
// analysis.
func DefaultSchedOptions() SchedOptions { return sched.DefaultOptions() }

// Simulation.
type (
	// SimOptions tune the discrete-event simulation.
	SimOptions = sim.Options
	// SimResult aggregates observed response times and the bus
	// trace.
	SimResult = sim.Result
	// TraceEvent is one bus-level occurrence of the trace.
	TraceEvent = sim.TraceEvent
)

// DefaultSimOptions simulates one hyper-period with a generous drain.
func DefaultSimOptions() SimOptions { return sim.DefaultOptions() }

// Simulate runs the discrete-event simulator for a configured system.
func Simulate(sys *System, cfg *Config, table *ScheduleTable, opts SimOptions) (*SimResult, error) {
	s, err := sim.New(sys, cfg, table, opts)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Workload generation.
type GenParams = synth.Params

// DefaultGenParams returns the paper's Section 7 population parameters
// for the given node count and seed.
func DefaultGenParams(nodes int, seed int64) GenParams { return synth.DefaultParams(nodes, seed) }

// Generate builds one random system from the Section 7 population.
func Generate(p GenParams) (*System, error) { return synth.Generate(p) }

// CruiseController returns the paper's real-life case study: 54 tasks
// and 26 messages in 4 task graphs over 5 nodes.
func CruiseController() (*System, error) { return cruise.System() }
