// Benchmarks regenerating every figure of the paper's evaluation
// (Section 7). Each benchmark is one experiment of DESIGN.md's
// per-experiment index; run them with
//
//	go test -bench=. -benchmem
//
// The figure data itself is printed by cmd/flexray-bench; these benches
// measure the cost of regenerating it and keep the experiments
// permanently exercised by CI.
package flexopt_test

import (
	"context"
	"fmt"
	"testing"

	flexopt "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfreg"
)

// BenchmarkFig1Trace regenerates the Fig. 1 protocol-mechanics trace
// (two bus cycles, eight messages, three nodes).
func BenchmarkFig1Trace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig1Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3STSegment regenerates the three static-segment
// configurations of Fig. 3 (paper: R3 = 16/12/10).
func BenchmarkFig3STSegment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.R3 != r.PaperR3 {
				b.Fatalf("%v: R3=%v, paper %v", r.Variant, r.R3, r.PaperR3)
			}
		}
	}
}

// BenchmarkFig4DYNSegment regenerates the three dynamic-segment
// configurations of Fig. 4 (paper: R2 = 37/35/21).
func BenchmarkFig4DYNSegment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.R2 != r.PaperR2 {
				b.Fatalf("%v: R2=%v, paper %v", r.Variant, r.R2, r.PaperR2)
			}
		}
	}
}

// BenchmarkFig7DYNSweep regenerates the response-time versus
// dynamic-segment-length characterisation (Fig. 7) at a reduced
// resolution.
func BenchmarkFig7DYNSweep(b *testing.B) {
	b.ReportAllocs()
	p := experiments.DefaultFig7Params()
	p.Points = 9
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Quality regenerates a reduced Fig. 9 left panel: cost
// deviation of BBC / OBC-CF / OBC-EE versus the SA baseline.
func BenchmarkFig9Quality(b *testing.B) {
	b.ReportAllocs()
	p := experiments.QuickFig9Params()
	p.AppsPerSet = 1
	p.NodeCounts = []int{2, 3}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkFig9Runtime times the four optimisers on one mid-size
// system (Fig. 9 right panel, single column).
func BenchmarkFig9Runtime(b *testing.B) {
	b.ReportAllocs()
	sys, err := flexopt.Generate(flexopt.DefaultGenParams(3, 77))
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.QuickFig9Params().Opts
	for _, alg := range []struct {
		name string
		run  func(*flexopt.System, flexopt.Options) (*flexopt.Result, error)
	}{
		{"BBC", flexopt.BBC},
		{"OBC-CF", flexopt.OBCCF},
		{"OBC-EE", flexopt.OBCEE},
		{"SA", flexopt.SA},
	} {
		b.Run(alg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alg.run(sys, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCruiseController regenerates the in-text case study: BBC
// unschedulable, OBC-CF and OBC-EE schedulable with OBC-CF cheaper.
func BenchmarkCruiseController(b *testing.B) {
	b.ReportAllocs()
	opts := core.DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Cruise(opts)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Schedulable {
			b.Fatal("BBC unexpectedly schedulable")
		}
		if !rows[1].Schedulable || !rows[2].Schedulable {
			b.Fatal("OBC variants must configure the cruise controller")
		}
	}
}

// BenchmarkAblations runs the three design-choice ablations of
// DESIGN.md §6 (FrameID order, latest-transmission rule, fill solver).
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations([]int64{1, 2}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d, want 6", len(rows))
		}
	}
}

// BenchmarkEvaluation measures a single schedule+analysis evaluation —
// the unit of work every optimiser spends its budget on.
func BenchmarkEvaluation(b *testing.B) {
	b.ReportAllocs()
	sys, err := flexopt.Generate(flexopt.DefaultGenParams(4, 123))
	if err != nil {
		b.Fatal(err)
	}
	res, err := flexopt.BBC(sys, flexopt.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := flexopt.BuildSchedule(sys, res.Config, flexopt.DefaultSchedOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation measures one hyper-period of discrete-event
// simulation of a configured four-node system.
func BenchmarkSimulation(b *testing.B) {
	b.ReportAllocs()
	sys, err := flexopt.Generate(flexopt.DefaultGenParams(4, 123))
	if err != nil {
		b.Fatal(err)
	}
	res, err := flexopt.BBC(sys, flexopt.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	table, _, err := flexopt.BuildSchedule(sys, res.Config, flexopt.DefaultSchedOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flexopt.Simulate(sys, res.Config, table, flexopt.DefaultSimOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Population and campaignBenchOpts come from the perfreg
// scenario constructors: the scaling benchmarks and `flexray-bench
// perf` measure the same populations under the same budgets and
// cannot drift apart.
func fig7Population(n int) []flexopt.GenParams { return perfreg.Fig7Population(n) }

func campaignBenchOpts() flexopt.Options { return perfreg.CampaignTuning() }

// BenchmarkCampaignWorkers measures campaign throughput over the
// Fig. 7 population as the worker count grows; the records are
// identical at every setting, only the wall-clock changes. Expect
// >1.5x throughput at 4 workers versus 1 on a 4-core machine (on a
// single-core machine the curves coincide — there is nothing to
// parallelise onto).
func BenchmarkCampaignWorkers(b *testing.B) {
	b.ReportAllocs()
	specs := fig7Population(6)
	opts := campaignBenchOpts()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := flexopt.Campaign(context.Background(), specs, opts,
					flexopt.CampaignOptions{Workers: workers},
					func(flexopt.CampaignRecord) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPortfolioWorkers measures racing the full optimiser
// portfolio on one Fig. 7 system over the shared caching engine.
func BenchmarkPortfolioWorkers(b *testing.B) {
	b.ReportAllocs()
	sys, err := flexopt.Generate(fig7Population(1)[0])
	if err != nil {
		b.Fatal(err)
	}
	opts := campaignBenchOpts()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := flexopt.Portfolio(context.Background(), sys, opts,
					flexopt.EngineOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sessionBenchConfigs builds the candidate stream of the evaluation
// session benchmark through the shared perfreg constructor: a
// DYN-length sweep at fixed geometry interleaved with SA-style
// FrameID rotations — the two workloads the optimisers actually
// produce, identical to what `flexray-bench perf` measures.
func sessionBenchConfigs(b *testing.B, sys *flexopt.System) []*flexopt.Config {
	cfgs, err := perfreg.SessionConfigs(sys)
	if err != nil {
		b.Fatal(err)
	}
	return cfgs
}

// BenchmarkEvalSession compares the cost of one candidate evaluation on
// the fresh path (one schedule build plus one single-use analyzer, the
// pre-session pipeline) against one long-lived evaluation session.
// Run with -benchmem: the session's point is the allocs/op column.
func BenchmarkEvalSession(b *testing.B) {
	sys, err := perfreg.SessionSystem()
	if err != nil {
		b.Fatal(err)
	}
	cfgs := sessionBenchConfigs(b, sys)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := flexopt.BuildSchedule(sys, cfgs[i%len(cfgs)], flexopt.DefaultSchedOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		sess := flexopt.NewEvalSession(sys, flexopt.DefaultSchedOptions())
		for i := 0; i < b.N; i++ {
			if res, cost := sess.Eval(cfgs[i%len(cfgs)]); res == nil {
				b.Fatalf("config %d infeasible (cost %v)", i%len(cfgs), cost)
			}
		}
	})
}

// BenchmarkPerfScenarios drives every scenario op of the
// performance-regression harness (internal/perfreg) under the
// standard benchmark runner. `flexray-bench perf` measures exactly
// these ops with its own calibrated-sampling harness; this benchmark
// keeps them exercised by `go test -bench` so the two surfaces cannot
// diverge.
func BenchmarkPerfScenarios(b *testing.B) {
	for _, sc := range flexopt.PerfSuite() {
		b.Run(sc.Name, func(b *testing.B) {
			op, cleanup, err := sc.Setup()
			if err != nil {
				b.Fatal(err)
			}
			if cleanup != nil {
				defer cleanup()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
